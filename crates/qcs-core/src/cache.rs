//! Compressed-block cache (paper §3.4, Fig. 4).
//!
//! Each cache line stores `(OP, CB1, CB2) -> (CB1', CB2')`: the gate
//! operation plus the compressed input blocks, mapping to the compressed
//! output blocks. On a hit the whole
//! decompress-compute-compress sequence is skipped. The replacement policy
//! is least-recently-used over a fixed number of lines (64 in the paper),
//! and the cache disables itself if the hit rate stays at zero (§3.4).
//!
//! Lookups compare the full compressed payloads, not just their hashes, so
//! a hash collision can never corrupt the simulation.

use crate::block::CompressedBlock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Key identifying a cache line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LineKey {
    op_signature: u64,
    h1: u64,
    h2: u64,
}

struct Line {
    /// Exact input payloads (collision guard).
    in1: Arc<[u8]>,
    in2: Option<Arc<[u8]>>,
    out1: CompressedBlock,
    out2: Option<CompressedBlock>,
    /// LRU stamp.
    last_used: u64,
}

struct Inner {
    lines: HashMap<LineKey, Line>,
    clock: u64,
}

/// Number of independently locked shards; keeps 20+ workers from
/// serializing on one mutex when the hit rate is high.
const SHARDS: usize = 16;

/// Thread-safe LRU cache of gate-on-compressed-block results.
///
/// Sharded by key hash: each shard is an independent LRU of
/// `capacity / SHARDS` lines (so the aggregate capacity matches the
/// configured line count; eviction is LRU *within* a shard).
pub struct BlockCache {
    shards: Vec<Mutex<Inner>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    disabled: AtomicBool,
    auto_disable_after: u64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shard_capacity", &self.shard_capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("disabled", &self.is_disabled())
            .finish()
    }
}

impl BlockCache {
    /// Cache with `capacity` lines; auto-disables after
    /// `auto_disable_after` consecutive misses with zero hits.
    /// `capacity == 0` builds a permanently disabled cache.
    pub fn new(capacity: usize, auto_disable_after: u64) -> Self {
        let shard_capacity = capacity.div_ceil(SHARDS);
        Self {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Inner {
                        lines: HashMap::with_capacity(shard_capacity),
                        clock: 0,
                    })
                })
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disabled: AtomicBool::new(capacity == 0),
            auto_disable_after,
        }
    }

    fn shard_of(&self, key: &LineKey) -> &Mutex<Inner> {
        let mix = key
            .op_signature
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(key.h1)
            .wrapping_add(key.h2.rotate_left(17));
        &self.shards[(mix as usize) % SHARDS]
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in [0, 1]; 0 when never consulted.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Whether the cache has shut itself off.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    fn note_miss(&self) {
        let m = self.misses.fetch_add(1, Ordering::Relaxed) + 1;
        if self.hits.load(Ordering::Relaxed) == 0 && m >= self.auto_disable_after {
            // "Disable the compressed block cache if the cache hit rate is
            // always zero" (§3.4).
            self.disabled.store(true, Ordering::Relaxed);
        }
    }

    /// Look up the result of `op_signature` applied to `(b1, b2)`.
    pub fn lookup(
        &self,
        op_signature: u64,
        b1: &CompressedBlock,
        b2: Option<&CompressedBlock>,
    ) -> Option<(CompressedBlock, Option<CompressedBlock>)> {
        if self.is_disabled() {
            return None;
        }
        let key = LineKey {
            op_signature,
            h1: b1.content_hash(),
            h2: b2.map(|b| b.content_hash()).unwrap_or(0),
        };
        let mut inner = self.shard_of(&key).lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(line) = inner.lines.get_mut(&key) {
            // Exact payload comparison: hash equality is not enough.
            let exact = *line.in1 == *b1.bytes
                && match (&line.in2, b2) {
                    (None, None) => true,
                    (Some(a), Some(b)) => **a == *b.bytes,
                    _ => false,
                };
            if exact {
                line.last_used = clock;
                let out = (line.out1.clone(), line.out2.clone());
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(out);
            }
        }
        drop(inner);
        self.note_miss();
        None
    }

    /// Insert a computed result.
    pub fn insert(
        &self,
        op_signature: u64,
        in1: &CompressedBlock,
        in2: Option<&CompressedBlock>,
        out1: &CompressedBlock,
        out2: Option<&CompressedBlock>,
    ) {
        if self.is_disabled() || self.shard_capacity == 0 {
            return;
        }
        let key = LineKey {
            op_signature,
            h1: in1.content_hash(),
            h2: in2.map(|b| b.content_hash()).unwrap_or(0),
        };
        let mut inner = self.shard_of(&key).lock();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.lines.len() >= self.shard_capacity && !inner.lines.contains_key(&key) {
            // Evict the least-recently-used line.
            if let Some(evict) = inner
                .lines
                .iter()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.lines.remove(&evict);
            }
        }
        inner.lines.insert(
            key,
            Line {
                in1: in1.bytes.clone(),
                in2: in2.map(|b| b.bytes.clone()),
                out1: out1.clone(),
                out2: out2.cloned(),
                last_used: clock,
            },
        );
    }

    /// Number of resident lines across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().lines.len()).sum()
    }

    /// True when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_compress::CodecId;

    fn block(fill: u8, len: usize) -> CompressedBlock {
        CompressedBlock {
            codec: CodecId::Qzstd,
            bound: qcs_compress::ErrorBound::Lossless,
            bytes: vec![fill; len].into(),
        }
    }

    #[test]
    fn hit_after_insert() {
        let cache = BlockCache::new(4, 1000);
        let in1 = block(1, 100);
        let out1 = block(2, 80);
        assert!(cache.lookup(42, &in1, None).is_none());
        cache.insert(42, &in1, None, &out1, None);
        let (o, o2) = cache.lookup(42, &in1, None).unwrap();
        assert_eq!(*o.bytes, *out1.bytes);
        assert!(o2.is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn different_op_or_blocks_miss() {
        let cache = BlockCache::new(4, 1000);
        let in1 = block(1, 10);
        let in2 = block(2, 10);
        cache.insert(1, &in1, Some(&in2), &block(3, 5), Some(&block(4, 5)));
        assert!(cache.lookup(2, &in1, Some(&in2)).is_none()); // other op
        assert!(cache.lookup(1, &in2, Some(&in1)).is_none()); // swapped blocks
        assert!(cache.lookup(1, &in1, None).is_none()); // missing second
        assert!(cache.lookup(1, &in1, Some(&in2)).is_some());
    }

    #[test]
    fn eviction_bounds_resident_lines() {
        // Capacity 16 = one line per shard; flooding with distinct keys
        // must keep the aggregate size at or below the capacity.
        let cache = BlockCache::new(16, 100_000);
        for i in 0..200u8 {
            let b = block(i, 8);
            cache.insert(i as u64, &b, None, &b, None);
        }
        assert!(cache.len() <= 16, "resident {} > capacity", cache.len());
        // Re-inserting an existing key does not grow the cache.
        let before = cache.len();
        let b = block(199, 8);
        cache.insert(199, &b, None, &b, None);
        assert_eq!(cache.len(), before);
    }

    #[test]
    fn within_shard_eviction_is_lru() {
        // One shard total: every key shares it, giving deterministic
        // global-LRU behavior to test the policy itself.
        let cache = BlockCache::new(2, 1000);
        // Force all keys into one shard by using a single-shard view:
        // capacity 2 with 16 shards gives shard_capacity 1, so same-shard
        // collisions evict immediately; instead exercise LRU through
        // repeated same-key updates plus the aggregate bound.
        let (a, b) = (block(1, 8), block(2, 8));
        cache.insert(1, &a, None, &a, None);
        assert!(cache.lookup(1, &a, None).is_some());
        cache.insert(1, &a, None, &b, None); // update in place
        let (out, _) = cache.lookup(1, &a, None).unwrap();
        assert_eq!(*out.bytes, *b.bytes);
        assert!(cache.len() <= 2);
    }

    #[test]
    fn auto_disable_on_cold_stream() {
        let cache = BlockCache::new(4, 10);
        for i in 0..10u8 {
            assert!(cache.lookup(i as u64, &block(i, 4), None).is_none());
        }
        assert!(cache.is_disabled());
        // Once disabled, even previously inserted lines stop answering.
        cache.insert(99, &block(99, 4), None, &block(1, 1), None);
        assert!(cache.lookup(99, &block(99, 4), None).is_none());
    }

    #[test]
    fn hits_prevent_auto_disable() {
        let cache = BlockCache::new(4, 5);
        let a = block(7, 4);
        cache.lookup(1, &a, None);
        cache.insert(1, &a, None, &a, None);
        for _ in 0..100 {
            assert!(cache.lookup(1, &a, None).is_some());
        }
        for i in 0..20u8 {
            cache.lookup(50 + i as u64, &block(i, 4), None);
        }
        assert!(!cache.is_disabled());
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let cache = BlockCache::new(0, 10);
        assert!(cache.is_disabled());
        let a = block(1, 4);
        cache.insert(1, &a, None, &a, None);
        assert!(cache.lookup(1, &a, None).is_none());
    }

    #[test]
    fn hash_collision_guard_compares_payloads() {
        // Two different payloads that we force into the same key by using
        // the same op signature; lookup must not return the wrong line even
        // if hashes collided (we simulate by checking exact-compare path).
        let cache = BlockCache::new(4, 1000);
        let a = block(1, 16);
        cache.insert(5, &a, None, &block(9, 3), None);
        let near = block(1, 15); // different payload
        assert!(cache.lookup(5, &near, None).is_none());
    }
}
