//! Simulation checkpointing (paper §3.5).
//!
//! Supercomputer jobs hit wall-time limits; the paper saves the compressed
//! blocks before the job ends and resumes in the next submission. Since the
//! blocks are already compressed, the checkpoint is simply the block table
//! plus the ladder level and fidelity ledger, in an explicit versioned
//! binary format:
//!
//! ```text
//! magic "QCSCKPT2" | num_qubits u32 | ranks_log2 u32 | block_log2 u32
//! | level u32 | lossy_codec u8
//! | ledger: log_product f64, gates u64, lossy_gates u64, max_delta f64
//! | block_count u64 | blocks: one qcs_compress::frame each *
//! ```
//!
//! Version 2 stores each block as a self-describing
//! [`qcs_compress::frame`] — the same format the out-of-core spill tier
//! uses — so every block record carries its codec id, error bound, length,
//! and a payload checksum; a flipped bit in a checkpoint surfaces as a
//! frame error on load, not as silently corrupt amplitudes.
//!
//! Checkpointing composes with the out-of-core tier in both directions:
//! saving streams spilled blocks one at a time through the block store
//! (never materializing more than one block beyond the workers' residency
//! budgets), and a checkpoint written under one residency budget can be
//! restored under any other (the restore simply re-seeds each rank's
//! store, which re-spills whatever exceeds the new budget).

use crate::block::CompressedBlock;
use crate::config::SimConfig;
use crate::engine::{CompressedSimulator, SimError};
use crate::fidelity_bound::FidelityLedger;
use qcs_compress::{frame, CodecId};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"QCSCKPT2";

/// Write a checkpoint of `sim` to `path`.
///
/// Works for any rank-worker count: the blocks are streamed out of their
/// owning ranks in rank-major order, one at a time, so the on-disk format
/// is identical whether the state was held by one in-place worker or by
/// many rank threads — and saving an out-of-core simulation never pulls
/// more than one block beyond the workers' residency budgets into memory
/// at once (spilled blocks go disk → frame → disk).
pub fn save(sim: &CompressedSimulator, path: &Path) -> Result<(), SimError> {
    let (cfg, layout, level, ledger) = sim.checkpoint_parts();
    let mut w = std::io::BufWriter::new(
        std::fs::File::create(path)
            .map_err(|e| SimError::Checkpoint(format!("create {path:?}: {e}")))?,
    );
    let io = |e: std::io::Error| SimError::Checkpoint(format!("write: {e}"));
    w.write_all(MAGIC).map_err(io)?;
    w.write_all(&layout.num_qubits.to_le_bytes()).map_err(io)?;
    w.write_all(&cfg.ranks_log2.to_le_bytes()).map_err(io)?;
    w.write_all(&cfg.block_log2.to_le_bytes()).map_err(io)?;
    w.write_all(&(level as u32).to_le_bytes()).map_err(io)?;
    w.write_all(&[cfg.lossy_codec as u8]).map_err(io)?;
    let (log_product, gates, lossy_gates, max_delta) = ledger.to_raw();
    w.write_all(&log_product.to_le_bytes()).map_err(io)?;
    w.write_all(&gates.to_le_bytes()).map_err(io)?;
    w.write_all(&lossy_gates.to_le_bytes()).map_err(io)?;
    w.write_all(&max_delta.to_le_bytes()).map_err(io)?;
    let (ranks, bpr) = (layout.ranks(), layout.blocks_per_rank());
    w.write_all(&((ranks * bpr) as u64).to_le_bytes())
        .map_err(io)?;
    for rank in 0..ranks {
        for block in 0..bpr {
            let blk = sim.fetch_block(rank, block)?;
            frame::write_frame(&mut w, blk.codec, blk.bound, &blk.bytes)
                .map_err(|e| SimError::Checkpoint(format!("write block frame: {e}")))?;
        }
    }
    w.flush().map_err(io)
}

/// Restore a simulator from a checkpoint.
///
/// The caller supplies the same `cfg` used originally (ladder, cache and
/// budget are session settings, not state); geometry fields are overwritten
/// from the checkpoint and validated. Per-rank block ownership is
/// re-established from the rank-major order: with `ranks_log2 >= 1` the
/// restored simulator stands its rank workers back up on fresh threads,
/// each seeded with its own slice of the block table.
pub fn load(path: &Path, mut cfg: SimConfig) -> Result<CompressedSimulator, SimError> {
    let mut r = std::io::BufReader::new(
        std::fs::File::open(path)
            .map_err(|e| SimError::Checkpoint(format!("open {path:?}: {e}")))?,
    );
    let io = |e: std::io::Error| SimError::Checkpoint(format!("read: {e}"));

    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io)?;
    if &magic != MAGIC {
        if magic.starts_with(b"QCSCKPT") {
            return Err(SimError::Checkpoint(format!(
                "unsupported checkpoint version '{}' (this build reads '{}'); \
                 re-save the state with the current build",
                magic[7] as char, MAGIC[7] as char
            )));
        }
        return Err(SimError::Checkpoint("bad magic".into()));
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    let mut read_u32 = |r: &mut dyn Read| -> Result<u32, SimError> {
        r.read_exact(&mut u32buf).map_err(io)?;
        Ok(u32::from_le_bytes(u32buf))
    };
    let num_qubits = read_u32(&mut r)?;
    let ranks_log2 = read_u32(&mut r)?;
    let block_log2 = read_u32(&mut r)?;
    let level = read_u32(&mut r)? as usize;
    // Geometry sanity before any shifts: corrupt headers must error out,
    // not overflow.
    if num_qubits == 0 || num_qubits > 40 || ranks_log2 + block_log2 > num_qubits {
        return Err(SimError::Checkpoint(format!(
            "implausible geometry: n={num_qubits} ranks_log2={ranks_log2} block_log2={block_log2}"
        )));
    }
    let mut byte = [0u8; 1];
    r.read_exact(&mut byte).map_err(io)?;
    let lossy_codec = CodecId::from_u8(byte[0])
        .ok_or_else(|| SimError::Checkpoint(format!("unknown codec id {}", byte[0])))?;

    let mut read_u64 = |r: &mut dyn Read| -> Result<u64, SimError> {
        r.read_exact(&mut u64buf).map_err(io)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let read_f64 = |r: &mut dyn Read| -> Result<f64, SimError> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).map_err(io)?;
        Ok(f64::from_le_bytes(b))
    };
    let log_product = read_f64(&mut r)?;
    let gates = read_u64(&mut r)?;
    let lossy_gates = read_u64(&mut r)?;
    let max_delta = read_f64(&mut r)?;
    let ledger = FidelityLedger::from_raw(log_product, gates, lossy_gates, max_delta);

    let block_count = read_u64(&mut r)? as usize;
    if block_count > (1usize << 40) {
        return Err(SimError::Checkpoint("absurd block count".into()));
    }
    let mut blocks = Vec::with_capacity(block_count);
    for i in 0..block_count {
        let f = frame::read_frame(&mut r)
            .map_err(|e| SimError::Checkpoint(format!("block frame {i}: {e}")))?;
        blocks.push(Some(CompressedBlock {
            codec: f.codec,
            bound: f.bound,
            bytes: f.payload.into(),
        }));
    }

    cfg.ranks_log2 = ranks_log2;
    cfg.block_log2 = block_log2;
    cfg.lossy_codec = lossy_codec;
    CompressedSimulator::from_checkpoint_parts(cfg, level, ledger, blocks, num_qubits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuits::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qcsim-ckpt-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_state_and_ledger() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SimConfig::default()
            .with_block_log2(3)
            .with_ranks_log2(1)
            .with_fixed_bound(qcs_compress::ErrorBound::PointwiseRelative(1e-4));
        let mut sim = CompressedSimulator::new(6, cfg.clone()).unwrap();
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        c.cx(0, 5).rz(0.4, 3);
        sim.run(&c, &mut rng).unwrap();
        let before = sim.snapshot_dense().unwrap();
        let ledger_before = sim.ledger().clone();

        let path = tmp("roundtrip");
        save(&sim, &path).unwrap();
        let restored = load(&path, cfg).unwrap();
        std::fs::remove_file(&path).ok();

        let after = restored.snapshot_dense().unwrap();
        assert_eq!(before.amplitudes().len(), after.amplitudes().len());
        for (a, b) in before.amplitudes().iter().zip(after.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(restored.ledger(), &ledger_before);
    }

    #[test]
    fn resume_continues_identically() {
        // Run circuit in one shot vs. checkpoint midway + resume.
        let mut c1 = Circuit::new(6);
        let mut c2 = Circuit::new(6);
        let mut full = Circuit::new(6);
        for q in 0..6 {
            c1.h(q);
            full.h(q);
        }
        c2.cx(0, 3).t(5).cphase(0.9, 2, 4);
        full.cx(0, 3).t(5).cphase(0.9, 2, 4);

        let cfg = SimConfig::default().with_block_log2(3).with_ranks_log2(1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim_a = CompressedSimulator::new(6, cfg.clone()).unwrap();
        sim_a.run(&full, &mut rng).unwrap();

        let mut sim_b = CompressedSimulator::new(6, cfg.clone()).unwrap();
        sim_b.run(&c1, &mut rng).unwrap();
        let path = tmp("resume");
        save(&sim_b, &path).unwrap();
        let mut resumed = load(&path, cfg).unwrap();
        std::fs::remove_file(&path).ok();
        resumed.run(&c2, &mut rng).unwrap();

        let fa = sim_a.snapshot_dense().unwrap();
        let fb = resumed.snapshot_dense().unwrap();
        assert!(fa.fidelity(&fb) > 1.0 - 1e-12);
    }

    #[test]
    fn multi_rank_round_trip_reestablishes_block_ownership() {
        // Save from a 4-rank-worker simulator, restore, and prove the
        // restored workers (a) hold bit-identical state and (b) own their
        // block slices well enough to run every routing case — including a
        // fresh inter-rank compressed exchange — identically to an
        // uncheckpointed run.
        let cfg = SimConfig::default().with_block_log2(3).with_ranks_log2(2);
        let mut warm = Circuit::new(8);
        for q in 0..8 {
            warm.h(q);
        }
        warm.t(7).cx(6, 1).rz(0.31, 0);
        let mut tail = Circuit::new(8);
        tail.h(0).cx(0, 7).cphase(0.8, 6, 2).h(7);

        let mut rng = StdRng::seed_from_u64(3);
        let mut sim = CompressedSimulator::new(8, cfg.clone()).unwrap();
        sim.run(&warm, &mut rng).unwrap();
        let before = sim.snapshot_dense().unwrap();

        let path = tmp("multirank");
        save(&sim, &path).unwrap();
        let mut restored = load(&path, cfg.clone()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.ranks(), 4);

        let after = restored.snapshot_dense().unwrap();
        for (a, b) in before.amplitudes().iter().zip(after.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }

        // Continue both simulators through a rank-crossing tail.
        sim.run(&tail, &mut rng).unwrap();
        restored.run(&tail, &mut rng).unwrap();
        assert!(
            restored.report().bytes_exchanged > 0,
            "restored workers must exchange compressed payloads"
        );
        let (a, b) = (
            sim.snapshot_dense().unwrap(),
            restored.snapshot_dense().unwrap(),
        );
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn save_while_spilled_restores_into_any_budget() {
        // Run out-of-core (only 2 of 16 blocks resident), checkpoint, and
        // restore under a smaller budget, a larger budget, and fully
        // in-RAM. Every variant must hold bit-identical amplitudes to the
        // all-resident reference run.
        let base = SimConfig::default().with_block_log2(3);
        let mut c = Circuit::new(7);
        for q in 0..7 {
            c.h(q);
        }
        c.t(6).cx(5, 0).rz(0.21, 3);

        let mut rng = StdRng::seed_from_u64(7);
        let mut reference = CompressedSimulator::new(7, base.clone()).unwrap();
        reference.run(&c, &mut rng).unwrap();
        let want = reference.snapshot_dense().unwrap();

        let mut rng = StdRng::seed_from_u64(7);
        let mut spilled = CompressedSimulator::new(7, base.clone().with_spill(2)).unwrap();
        spilled.run(&c, &mut rng).unwrap();
        assert!(spilled.report().spills > 0, "precondition: blocks on disk");

        let path = tmp("spilled");
        save(&spilled, &path).unwrap();

        for restore_cfg in [
            base.clone().with_spill(1),  // smaller residency budget
            base.clone().with_spill(12), // larger than the spilled run's
            base.clone(),                // no spilling at all
        ] {
            let restored = load(&path, restore_cfg).unwrap();
            let got = restored.snapshot_dense().unwrap();
            for (a, b) in want.amplitudes().iter().zip(got.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spilled_restore_continues_identically() {
        // Checkpoint mid-circuit from a spilled simulator, restore into a
        // *smaller* budget, run the tail, and match the uncheckpointed
        // spilled run exactly.
        let cfg = SimConfig::default().with_block_log2(3).with_spill(3);
        let mut head = Circuit::new(7);
        let mut tail = Circuit::new(7);
        let mut full = Circuit::new(7);
        for q in 0..7 {
            head.h(q);
            full.h(q);
        }
        tail.cx(0, 6).t(5).cphase(0.9, 2, 4);
        full.cx(0, 6).t(5).cphase(0.9, 2, 4);

        let mut rng = StdRng::seed_from_u64(8);
        let mut oneshot = CompressedSimulator::new(7, cfg.clone()).unwrap();
        oneshot.run(&full, &mut rng).unwrap();

        let mut rng = StdRng::seed_from_u64(8);
        let mut staged = CompressedSimulator::new(7, cfg.clone()).unwrap();
        staged.run(&head, &mut rng).unwrap();
        let path = tmp("spilled-resume");
        save(&staged, &path).unwrap();
        let mut resumed = load(&path, cfg.with_spill(1)).unwrap();
        std::fs::remove_file(&path).ok();
        resumed.run(&tail, &mut rng).unwrap();
        assert!(resumed.report().spills > 0);

        let (a, b) = (
            oneshot.snapshot_dense().unwrap(),
            resumed.snapshot_dense().unwrap(),
        );
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn block_frame_corruption_is_detected_on_load() {
        let cfg = SimConfig::default().with_block_log2(3);
        let mut sim = CompressedSimulator::new(6, cfg.clone()).unwrap();
        let mut c = Circuit::new(6);
        c.h(0).h(5).t(2);
        let mut rng = StdRng::seed_from_u64(9);
        sim.run(&c, &mut rng).unwrap();
        let path = tmp("bitrot");
        save(&sim, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit near the end (inside the last block frame).
        let idx = bytes.len() - 2;
        bytes[idx] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match load(&path, cfg) {
            Err(SimError::Checkpoint(m)) => {
                assert!(m.contains("frame"), "unexpected error detail: {m}")
            }
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("corrupt block frame accepted"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"NOTACKPT").unwrap();
        assert!(load(&path, SimConfig::default()).is_err());
        std::fs::write(&path, b"QC").unwrap();
        assert!(load(&path, SimConfig::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn old_version_checkpoint_gets_actionable_error() {
        let path = tmp("v1");
        std::fs::write(&path, b"QCSCKPT1then-some-v1-payload").unwrap();
        match load(&path, SimConfig::default()) {
            Err(SimError::Checkpoint(m)) => assert!(
                m.contains("version '1'") && m.contains("reads '2'"),
                "v1 file must name the version mismatch, got: {m}"
            ),
            other => panic!(
                "v1 checkpoint mishandled: {:?}",
                other.err().map(|e| e.to_string())
            ),
        }
        std::fs::remove_file(&path).ok();
    }
}
