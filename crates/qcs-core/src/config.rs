//! Simulator configuration (paper §3, §5.1).

use crate::store::Eviction;
use qcs_compress::{CodecId, ErrorBound};
use std::path::PathBuf;

/// Out-of-core tier configuration: how many hot compressed blocks each
/// rank keeps resident, which eviction policy picks victims, how
/// eviction writes reach disk, and where the cold ones spill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Residency budget per rank, in blocks (minimum 1): the hottest
    /// `resident_blocks` compressed blocks stay in memory (victims chosen
    /// by `eviction`); the rest live in the rank's segment file(s).
    pub resident_blocks: usize,
    /// Directory for the per-rank segment files; `None` uses the system
    /// temp directory. Files are deleted when the simulator is dropped.
    pub dir: Option<PathBuf>,
    /// Victim-selection policy for the residency budget: classic
    /// [`Eviction::Lru`] (the default) or plan-driven
    /// [`Eviction::PlannedMin`] (Belady's MIN over the schedule's
    /// `AccessPlan`).
    pub eviction: Eviction,
    /// Drain eviction writes on a per-rank background writer thread
    /// (bounded dirty buffer, coalesced appends, flush/drop barriers)
    /// instead of appending synchronously on the critical path.
    pub write_behind: bool,
    /// Segment shards per rank (minimum 1): with `> 1`, each rank keeps
    /// one segment file in each of `shards` directories and rotates
    /// eviction runs across them in eviction order.
    pub shards: usize,
}

impl SpillConfig {
    /// Spill config with the given per-rank residency budget, segments in
    /// the system temp directory, LRU eviction, synchronous writes, one
    /// shard.
    pub fn new(resident_blocks: usize) -> Self {
        Self {
            resident_blocks,
            dir: None,
            eviction: Eviction::default(),
            write_behind: false,
            shards: 1,
        }
    }

    /// The directory segment files are created in.
    pub fn directory(&self) -> PathBuf {
        self.dir.clone().unwrap_or_else(std::env::temp_dir)
    }
}

/// Multi-node transport configuration: where the `qcsim-workerd` daemons
/// listen and how connections to them are supervised. When set on a
/// [`SimConfig`], every rank worker is hosted remotely — rank `r` dials
/// `endpoints[r % endpoints.len()]`, so one daemon can host many ranks
/// (the loopback Fig. 5 sweep) or each node can run its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteConfig {
    /// Daemon addresses (`host:port`), at least one.
    pub endpoints: Vec<String>,
    /// Connection attempts per rank before giving up (minimum 1).
    pub connect_attempts: u32,
    /// Backoff before the first reconnect attempt, in milliseconds;
    /// doubles per retry, capped at two seconds.
    pub connect_backoff_ms: u64,
    /// Read/write timeout installed on each rank's stream, in
    /// milliseconds (`None` blocks forever). Generous by default: a wave
    /// on a big state legitimately keeps the socket silent for a while.
    pub io_timeout_ms: Option<u64>,
}

impl RemoteConfig {
    /// Remote transport to `endpoints` with default supervision: 5
    /// connect attempts backing off from 50 ms, 120 s I/O timeouts.
    pub fn new(endpoints: Vec<String>) -> Self {
        Self {
            endpoints,
            connect_attempts: 5,
            connect_backoff_ms: 50,
            io_timeout_ms: Some(120_000),
        }
    }

    /// The [`qcs_net::ConnectPolicy`] these knobs describe.
    pub fn connect_policy(&self) -> qcs_net::ConnectPolicy {
        qcs_net::ConnectPolicy {
            attempts: self.connect_attempts,
            initial_backoff: std::time::Duration::from_millis(self.connect_backoff_ms),
            read_timeout: self.io_timeout_ms.map(std::time::Duration::from_millis),
            write_timeout: self.io_timeout_ms.map(std::time::Duration::from_millis),
        }
    }
}

/// Configuration for the compressed-block simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// `log2` of amplitudes per block. The paper uses blocks of 2^20
    /// amplitudes (16 MB); the default here is smaller so laptop-scale
    /// experiments have enough blocks per rank to exercise the layout.
    pub block_log2: u32,
    /// `log2` of the rank-worker count (paper: 128 ranks/node x up to
    /// 4,096 nodes). `0` runs a single in-place worker; `>= 1` spawns one
    /// dedicated worker thread per rank, with rank-crossing gates moving
    /// compressed payloads between paired workers.
    pub ranks_log2: u32,
    /// Rayon threads installed inside each rank worker (the paper's
    /// threads-per-rank axis in Fig. 5). `None` divides the machine's
    /// available parallelism evenly across ranks.
    pub threads_per_rank: Option<usize>,
    /// Memory budget in bytes for Eq. 8 accounting (compressed blocks plus
    /// two scratch blocks per rank). `None` disables the adaptive ladder:
    /// the simulation stays at the first ladder level.
    pub memory_budget: Option<u64>,
    /// Lossy codec used once the ladder leaves the lossless level.
    pub lossy_codec: CodecId,
    /// The adaptive error-bound ladder (§3.7). Defaults to
    /// `[lossless, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1]`.
    pub ladder: Vec<ErrorBound>,
    /// Compressed-block cache lines per simulation (§3.4; the paper uses
    /// 64). 0 disables the cache entirely.
    pub cache_lines: usize,
    /// Auto-disable the cache after this many consecutive lookups with no
    /// hit (§3.4: "our simulator will disable the compressed block cache if
    /// the cache hit rate is always zero").
    pub cache_auto_disable_after: u64,
    /// When the ladder escalates, immediately recompress every block at the
    /// new bound so the budget is actually restored (rather than only
    /// applying the new bound to future compressions).
    pub recompress_on_escalate: bool,
    /// Optional modeled interconnect bandwidth in bytes/second. When set,
    /// each rank-pair exchange adds `bytes / bandwidth` of *modeled* time to
    /// the communication phase on top of the measured copy time, standing
    /// in for the Aries network the paper measures.
    pub modeled_link_bandwidth: Option<f64>,
    /// Run circuits through the batch scheduler: fuse consecutive
    /// single-qubit gates on the same qubit and group consecutive
    /// intra-block gates into batches, so each block pays one
    /// decompress/recompress cycle per *batch* instead of per gate.
    /// Disable to reproduce the paper's strict gate-at-a-time pipeline.
    pub fusion: bool,
    /// Maximum (fused) gates per batch, in `1..=64` (the engine tracks the
    /// per-block gate-selection subset in a 64-bit mask). `1` keeps fusion
    /// but disables batching.
    pub max_batch_gates: usize,
    /// Out-of-core tier: when set, each rank keeps only
    /// `spill.resident_blocks` hot compressed blocks in memory and spills
    /// the rest to a per-rank segment file of checksummed frames. `None`
    /// (the default) keeps every block resident, as in the paper.
    pub spill: Option<SpillConfig>,
    /// Overlap spill-tier reads with compute (the default; only
    /// meaningful with `spill` set). Each rank's store runs a background
    /// fetch thread, waves are driven by the schedule's `AccessPlan`, and
    /// the next chunk of spilled blocks streams off disk while the
    /// current chunk computes — staged in a buffer bounded by the
    /// residency budget (double-buffering: one budget resident, at most
    /// one more staged). Disable to reproduce the pull-on-demand tier
    /// where every cold block is a blocking seek-and-read.
    pub prefetch: bool,
    /// Route qualifying waves through the segment-addressable partial
    /// decode/encode path (on by default). Diagonal and controlled gates,
    /// measurement collapse, and probability queries whose
    /// touched-amplitude set covers at most half of a block's segments
    /// decode and re-encode only those segments; on a spilled block the
    /// store reads only the needed segment byte ranges. Only effective
    /// with a segment-addressable lossy codec (Solution C/D, the
    /// default); disabling it reproduces whole-block decode everywhere.
    pub partial_decode: bool,
    /// Multi-node transport: when set, rank workers are hosted by
    /// `qcsim-workerd` daemons at these endpoints instead of in-process
    /// threads, with commands and compressed exchange payloads moving
    /// over TCP. `None` (the default) keeps every rank in-process.
    pub remote: Option<RemoteConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            block_log2: 12,
            ranks_log2: 0,
            threads_per_rank: None,
            memory_budget: None,
            lossy_codec: CodecId::SolutionC,
            ladder: qcs_compress::ladder().to_vec(),
            cache_lines: 64,
            cache_auto_disable_after: 512,
            recompress_on_escalate: true,
            modeled_link_bandwidth: None,
            fusion: true,
            max_batch_gates: qcs_circuits::schedule::MAX_BATCH_GATES,
            spill: None,
            prefetch: true,
            partial_decode: true,
            remote: None,
        }
    }
}

impl SimConfig {
    /// Largest qubit count [`SimConfig::validate`] accepts. A 62-qubit
    /// state already indexes 2^62 amplitudes — the ceiling of what u64
    /// amplitude indices (and the paper's largest runs) can address —
    /// and bounding it here keeps every downstream `1 << n` shift and
    /// footprint computation inside u64 range, so hostile wire configs
    /// cannot panic admission arithmetic.
    pub const MAX_QUBITS: u32 = 62;

    /// Config with a given block size exponent.
    pub fn with_block_log2(mut self, block_log2: u32) -> Self {
        self.block_log2 = block_log2;
        self
    }

    /// Config with a simulated rank count exponent.
    pub fn with_ranks_log2(mut self, ranks_log2: u32) -> Self {
        self.ranks_log2 = ranks_log2;
        self
    }

    /// Config with a fixed rayon width per rank worker (Fig. 5's
    /// threads-per-rank axis).
    pub fn with_threads_per_rank(mut self, threads: usize) -> Self {
        self.threads_per_rank = Some(threads.max(1));
        self
    }

    /// Config with a memory budget in bytes.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Config with a specific lossy codec.
    pub fn with_lossy_codec(mut self, codec: CodecId) -> Self {
        self.lossy_codec = codec;
        self
    }

    /// Config with a fixed single error bound instead of the full ladder.
    pub fn with_fixed_bound(mut self, bound: ErrorBound) -> Self {
        self.ladder = vec![bound];
        self
    }

    /// Config with the cache disabled.
    pub fn without_cache(mut self) -> Self {
        self.cache_lines = 0;
        self
    }

    /// Config with gate fusion and batching disabled (the paper's strict
    /// one-cycle-per-gate pipeline).
    pub fn without_fusion(mut self) -> Self {
        self.fusion = false;
        self
    }

    /// Config with fusion/batching explicitly on or off.
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Config with a batch-length cap (`1..=64`; validated).
    pub fn with_max_batch_gates(mut self, max: usize) -> Self {
        self.max_batch_gates = max;
        self
    }

    /// Config with the out-of-core tier enabled: at most `resident_blocks`
    /// hot compressed blocks per rank stay in memory, the rest spill to
    /// per-rank segment files in the system temp directory.
    pub fn with_spill(mut self, resident_blocks: usize) -> Self {
        self.spill = Some(SpillConfig::new(resident_blocks));
        self
    }

    /// Config with the out-of-core tier writing its segment files under
    /// `dir` (enables spilling if it was off; keeps a previously set
    /// residency budget).
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        let mut spill = self.spill.take().unwrap_or_else(|| SpillConfig::new(1));
        spill.dir = Some(dir);
        self.spill = Some(spill);
        self
    }

    /// Config with the out-of-core prefetch pipeline explicitly on or off
    /// (on by default; only meaningful together with a spill budget).
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Config with the given spill eviction policy (enables spilling with
    /// a 1-block budget if it was off; keeps a previously set budget).
    pub fn with_eviction(mut self, eviction: Eviction) -> Self {
        let mut spill = self.spill.take().unwrap_or_else(|| SpillConfig::new(1));
        spill.eviction = eviction;
        self.spill = Some(spill);
        self
    }

    /// Config with spill write-behind explicitly on or off (enables
    /// spilling with a 1-block budget if it was off; keeps a previously
    /// set budget).
    pub fn with_write_behind(mut self, write_behind: bool) -> Self {
        let mut spill = self.spill.take().unwrap_or_else(|| SpillConfig::new(1));
        spill.write_behind = write_behind;
        self.spill = Some(spill);
        self
    }

    /// Config with the given per-rank segment shard count (enables
    /// spilling with a 1-block budget if it was off; keeps a previously
    /// set budget; validated to be at least 1).
    pub fn with_spill_shards(mut self, shards: usize) -> Self {
        let mut spill = self.spill.take().unwrap_or_else(|| SpillConfig::new(1));
        spill.shards = shards;
        self.spill = Some(spill);
        self
    }

    /// Config with the partial decode/encode fast path explicitly on or
    /// off (on by default; see [`SimConfig::partial_decode`]).
    pub fn with_partial_decode(mut self, partial_decode: bool) -> Self {
        self.partial_decode = partial_decode;
        self
    }

    /// Host every rank worker remotely, on `qcsim-workerd` daemons at
    /// `endpoints` (rank `r` dials endpoint `r % endpoints.len()`), with
    /// default connection supervision (see [`RemoteConfig::new`]).
    pub fn with_remote<S: Into<String>>(mut self, endpoints: Vec<S>) -> Self {
        self.remote = Some(RemoteConfig::new(
            endpoints.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// The scheduling policy this config induces.
    pub fn fusion_policy(&self) -> qcs_circuits::FusionPolicy {
        qcs_circuits::FusionPolicy {
            fuse_single_qubit_runs: self.fusion,
            max_batch_gates: if self.fusion { self.max_batch_gates } else { 1 },
            block_log2: self.block_log2,
            retarget_diagonal: self.fusion,
        }
    }

    /// Validate invariants against a qubit count.
    pub fn validate(&self, num_qubits: u32) -> Result<(), String> {
        if self.ladder.is_empty() {
            return Err("ladder must have at least one level".into());
        }
        if num_qubits > Self::MAX_QUBITS {
            return Err(format!(
                "{num_qubits} qubits exceeds the supported maximum of {}",
                Self::MAX_QUBITS
            ));
        }
        // Widen to u64: ranks_log2/block_log2 come off the wire, and the
        // sum must not overflow-panic before the range check rejects it.
        if (num_qubits as u64) < self.ranks_log2 as u64 + self.block_log2 as u64 + 1 {
            return Err(format!(
                "{num_qubits} qubits cannot split into 2^{} ranks x 2^{} amp blocks",
                self.ranks_log2, self.block_log2
            ));
        }
        for w in self.ladder.windows(2) {
            if w[0].magnitude() >= w[1].magnitude() {
                return Err("ladder bounds must be strictly increasing".into());
            }
        }
        if !(1..=qcs_circuits::schedule::MAX_BATCH_GATES).contains(&self.max_batch_gates) {
            return Err(format!(
                "max_batch_gates {} outside 1..={}",
                self.max_batch_gates,
                qcs_circuits::schedule::MAX_BATCH_GATES
            ));
        }
        if let Some(spill) = &self.spill {
            if spill.resident_blocks == 0 {
                return Err("spill residency budget must be at least 1 block".into());
            }
            if spill.shards == 0 {
                return Err("spill shard count must be at least 1".into());
            }
        }
        if let Some(remote) = &self.remote {
            if remote.endpoints.is_empty() {
                return Err("remote transport needs at least one endpoint".into());
            }
            if remote.connect_attempts == 0 {
                return Err("remote transport needs at least one connect attempt".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_ladder() {
        let c = SimConfig::default();
        assert_eq!(c.ladder.len(), 6);
        assert_eq!(c.ladder[0], ErrorBound::Lossless);
        assert_eq!(c.ladder[5], ErrorBound::PointwiseRelative(1e-1));
        assert_eq!(c.cache_lines, 64);
        assert_eq!(c.lossy_codec, CodecId::SolutionC);
        assert!(c.partial_decode, "partial decode is on by default");
        assert!(!c.with_partial_decode(false).partial_decode);
    }

    #[test]
    fn builder_chain() {
        let c = SimConfig::default()
            .with_block_log2(8)
            .with_ranks_log2(2)
            .with_memory_budget(1 << 20)
            .without_cache();
        assert_eq!(c.block_log2, 8);
        assert_eq!(c.ranks_log2, 2);
        assert_eq!(c.memory_budget, Some(1 << 20));
        assert_eq!(c.cache_lines, 0);
    }

    #[test]
    fn remote_builders_and_validation() {
        let c = SimConfig::default().with_remote(vec!["127.0.0.1:7401"]);
        let remote = c.remote.as_ref().unwrap();
        assert_eq!(remote.endpoints, vec!["127.0.0.1:7401".to_string()]);
        assert_eq!(remote.connect_attempts, 5);
        assert!(c.validate(16).is_ok());
        let policy = remote.connect_policy();
        assert_eq!(policy.attempts, 5);
        assert_eq!(
            policy.read_timeout,
            Some(std::time::Duration::from_secs(120))
        );
        // No endpoints or no attempts cannot reach any daemon.
        let bad = SimConfig::default().with_remote(Vec::<String>::new());
        assert!(bad.validate(16).is_err());
        let mut bad = SimConfig::default().with_remote(vec!["127.0.0.1:7401"]);
        bad.remote.as_mut().unwrap().connect_attempts = 0;
        assert!(bad.validate(16).is_err());
        assert!(SimConfig::default().remote.is_none());
    }

    #[test]
    fn validation_catches_undersized_systems() {
        let c = SimConfig::default().with_block_log2(10).with_ranks_log2(4);
        assert!(c.validate(20).is_ok());
        assert!(c.validate(14).is_err());
    }

    #[test]
    fn spill_builders_and_validation() {
        let c = SimConfig::default().with_block_log2(3).with_spill(4);
        assert_eq!(c.spill.as_ref().unwrap().resident_blocks, 4);
        assert!(c.validate(9).is_ok());
        let c = c.with_spill_dir(PathBuf::from("/tmp/qcs-spill"));
        let spill = c.spill.as_ref().unwrap();
        assert_eq!(spill.resident_blocks, 4, "dir builder keeps the budget");
        assert_eq!(spill.directory(), PathBuf::from("/tmp/qcs-spill"));
        // A zero-block budget is rejected.
        let bad = SimConfig::default().with_spill(0);
        assert!(bad.validate(9).is_err());
        // Default stays all-resident, with the prefetch pipeline armed
        // for whenever a spill budget appears.
        assert!(SimConfig::default().spill.is_none());
        assert!(SimConfig::default().prefetch);
        assert!(!SimConfig::default().with_prefetch(false).prefetch);
        assert_eq!(SpillConfig::new(2).directory(), std::env::temp_dir());
        // New-knob defaults keep pre-policy behavior: LRU, synchronous
        // writes, single-segment layout.
        let spill = SpillConfig::new(2);
        assert_eq!(spill.eviction, Eviction::Lru);
        assert!(!spill.write_behind);
        assert_eq!(spill.shards, 1);
    }

    #[test]
    fn eviction_and_write_behind_builders() {
        let c = SimConfig::default()
            .with_spill(4)
            .with_eviction(Eviction::PlannedMin)
            .with_write_behind(true)
            .with_spill_shards(3);
        let spill = c.spill.as_ref().unwrap();
        assert_eq!(spill.resident_blocks, 4, "builders keep the budget");
        assert_eq!(spill.eviction, Eviction::PlannedMin);
        assert!(spill.write_behind);
        assert_eq!(spill.shards, 3);
        assert!(c.validate(9).is_err(), "block_log2 still default");
        let c = c.with_block_log2(3);
        assert!(c.validate(9).is_ok());
        // Zero shards are rejected.
        let bad = SimConfig::default()
            .with_block_log2(3)
            .with_spill(4)
            .with_spill_shards(0);
        assert!(bad.validate(9).is_err());
        // Each builder arms the spill tier if it was off.
        assert!(SimConfig::default()
            .with_eviction(Eviction::PlannedMin)
            .spill
            .is_some());
        assert!(SimConfig::default().with_write_behind(true).spill.is_some());
        assert!(SimConfig::default().with_spill_shards(2).spill.is_some());
    }

    #[test]
    fn validation_catches_bad_ladder() {
        let mut c = SimConfig {
            ladder: vec![],
            ..SimConfig::default()
        };
        assert!(c.validate(20).is_err());
        c.ladder = vec![
            ErrorBound::PointwiseRelative(1e-2),
            ErrorBound::PointwiseRelative(1e-3),
        ];
        assert!(c.validate(20).is_err());
    }
}
