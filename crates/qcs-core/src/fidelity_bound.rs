//! Fidelity lower-bound ledger (paper §3.8, Eq. 10-11).
//!
//! Every lossy compression with pointwise relative bound `delta` can shrink
//! each amplitude's magnitude by at most a factor `(1 - delta)`, so the
//! state fidelity after that compression is at least `(1 - delta)` times
//! the bound before it. Multiplying over all gates gives
//! `F >= prod_i (1 - delta_i)` (Eq. 11).
//!
//! The ledger tracks the product in log space so tens of thousands of
//! gates do not underflow, and records one `delta` per gate (the maximum
//! bound used by any block compression during that gate, which is what the
//! per-gate formulation of Eq. 11 requires).

/// Running lower bound on simulation fidelity.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityLedger {
    /// Sum of `ln(1 - delta_i)` over recorded gates.
    log_product: f64,
    /// Number of gates recorded (lossy or not).
    gates: usize,
    /// Number of gates that used a lossy bound.
    lossy_gates: usize,
    /// Largest delta ever recorded.
    max_delta: f64,
}

impl Default for FidelityLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl FidelityLedger {
    /// Fresh ledger with fidelity bound 1.
    pub fn new() -> Self {
        Self {
            log_product: 0.0,
            gates: 0,
            lossy_gates: 0,
            max_delta: 0.0,
        }
    }

    /// Record one gate whose compressions used at most `delta`
    /// (0 for lossless).
    pub fn record_gate(&mut self, delta: f64) {
        assert!((0.0..1.0).contains(&delta), "delta must be in [0,1)");
        self.gates += 1;
        if delta > 0.0 {
            self.lossy_gates += 1;
            self.log_product += (1.0 - delta).ln();
            if delta > self.max_delta {
                self.max_delta = delta;
            }
        }
    }

    /// Current lower bound on fidelity (Eq. 11).
    pub fn lower_bound(&self) -> f64 {
        self.log_product.exp()
    }

    /// Gates recorded.
    pub fn gates(&self) -> usize {
        self.gates
    }

    /// Gates that involved lossy compression.
    pub fn lossy_gates(&self) -> usize {
        self.lossy_gates
    }

    /// Largest per-gate bound seen.
    pub fn max_delta(&self) -> f64 {
        self.max_delta
    }

    /// Serialize to `(log_product, gates, lossy_gates, max_delta)` for
    /// checkpoints.
    pub fn to_raw(&self) -> (f64, u64, u64, f64) {
        (
            self.log_product,
            self.gates as u64,
            self.lossy_gates as u64,
            self.max_delta,
        )
    }

    /// Rebuild from checkpoint fields.
    pub fn from_raw(log_product: f64, gates: u64, lossy_gates: u64, max_delta: f64) -> Self {
        Self {
            log_product,
            gates: gates as usize,
            lossy_gates: lossy_gates as usize,
            max_delta,
        }
    }
}

/// The curve of Fig. 6: minimum fidelity bound after `gates` gates all
/// compressed at pointwise relative bound `delta`.
pub fn fidelity_curve(delta: f64, gates: usize) -> f64 {
    (1.0 - delta).powi(gates as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_gates_keep_bound_at_one() {
        let mut l = FidelityLedger::new();
        for _ in 0..1000 {
            l.record_gate(0.0);
        }
        assert_eq!(l.lower_bound(), 1.0);
        assert_eq!(l.gates(), 1000);
        assert_eq!(l.lossy_gates(), 0);
    }

    #[test]
    fn product_matches_direct_computation() {
        let mut l = FidelityLedger::new();
        let deltas = [1e-3, 1e-4, 1e-3, 1e-2];
        let mut direct = 1.0;
        for &d in &deltas {
            l.record_gate(d);
            direct *= 1.0 - d;
        }
        assert!((l.lower_bound() - direct).abs() < 1e-12);
        assert_eq!(l.max_delta(), 1e-2);
    }

    #[test]
    fn log_space_survives_many_gates() {
        let mut l = FidelityLedger::new();
        for _ in 0..100_000 {
            l.record_gate(1e-5);
        }
        let expect = (1.0f64 - 1e-5).powi(100_000);
        assert!((l.lower_bound() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn figure6_curve_values() {
        // Fig. 6: with PWR=1e-5 the bound stays near 1 for 5000 gates; with
        // 1e-2 it decays visibly; with 1e-1 it collapses quickly.
        assert!(fidelity_curve(1e-5, 5000) > 0.95);
        let mid = fidelity_curve(1e-2, 500);
        assert!(mid < 0.01 + 0.99 * fidelity_curve(1e-2, 0));
        assert!((fidelity_curve(1e-2, 100) - 0.366).abs() < 0.01);
        assert!(fidelity_curve(1e-1, 100) < 1e-4);
    }

    #[test]
    fn raw_round_trip() {
        let mut l = FidelityLedger::new();
        l.record_gate(1e-3);
        l.record_gate(0.0);
        let (lp, g, lg, md) = l.to_raw();
        let back = FidelityLedger::from_raw(lp, g, lg, md);
        assert_eq!(back, l);
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn delta_of_one_rejected() {
        FidelityLedger::new().record_gate(1.0);
    }
}
