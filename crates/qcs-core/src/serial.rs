//! Public wire codecs for [`SimConfig`] and [`SimReport`] — the
//! serialization seam the job server (`qcs-server`) submits configs and
//! streams reports through (ROADMAP item 2's "refactor
//! `SimConfig`/`SimReport` to be serializable" first step).
//!
//! The encoding is the same [`qcs_net::wire`] put/take vocabulary the
//! worker protocol uses: little-endian fixed-width scalars, 0/1 presence
//! bytes for options, and length-prefixed strings. Decoders never panic
//! on hostile input — truncated or corrupt bytes surface as a typed
//! [`NetError`] (pinned by `qcs-net/tests/prop_wire.rs`).

use crate::config::{RemoteConfig, SimConfig, SpillConfig};
use crate::engine::SimReport;
use crate::net::{
    put_bound, put_breakdown, put_duration, take_bound, take_breakdown, EVICTION_LRU,
    EVICTION_PLANNED_MIN,
};
use crate::store::Eviction;
use qcs_compress::CodecId;
use qcs_net::wire::{put_f64, put_str, put_u32, put_u64, put_u8};
use qcs_net::{Cursor, NetError};
use std::path::PathBuf;
use std::time::Duration;

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
        None => put_u8(buf, 0),
    }
}

fn take_opt_u64(cur: &mut Cursor) -> Result<Option<u64>, NetError> {
    Ok(if cur.take_u8()? != 0 {
        Some(cur.take_u64()?)
    } else {
        None
    })
}

/// Append a [`SimConfig`] to `buf`.
///
/// Fails only when `spill.dir` is a non-UTF-8 path, which cannot travel
/// portably; every other config encodes.
pub fn put_sim_config(buf: &mut Vec<u8>, cfg: &SimConfig) -> Result<(), NetError> {
    put_u32(buf, cfg.block_log2);
    put_u32(buf, cfg.ranks_log2);
    put_opt_u64(buf, cfg.threads_per_rank.map(|t| t as u64));
    put_opt_u64(buf, cfg.memory_budget);
    put_u8(buf, cfg.lossy_codec as u8);
    put_u32(buf, cfg.ladder.len() as u32);
    for bound in &cfg.ladder {
        put_bound(buf, *bound);
    }
    put_u64(buf, cfg.cache_lines as u64);
    put_u64(buf, cfg.cache_auto_disable_after);
    put_u8(buf, cfg.recompress_on_escalate as u8);
    match cfg.modeled_link_bandwidth {
        Some(bw) => {
            put_u8(buf, 1);
            put_f64(buf, bw);
        }
        None => put_u8(buf, 0),
    }
    put_u8(buf, cfg.fusion as u8);
    put_u64(buf, cfg.max_batch_gates as u64);
    match &cfg.spill {
        Some(spill) => {
            put_u8(buf, 1);
            put_u64(buf, spill.resident_blocks as u64);
            match &spill.dir {
                Some(dir) => {
                    let dir = dir.to_str().ok_or_else(|| {
                        NetError::Protocol("spill dir is not UTF-8; cannot serialize".into())
                    })?;
                    put_u8(buf, 1);
                    put_str(buf, dir);
                }
                None => put_u8(buf, 0),
            }
            put_u8(
                buf,
                match spill.eviction {
                    Eviction::Lru => EVICTION_LRU,
                    Eviction::PlannedMin => EVICTION_PLANNED_MIN,
                },
            );
            put_u8(buf, spill.write_behind as u8);
            put_u64(buf, spill.shards as u64);
        }
        None => put_u8(buf, 0),
    }
    put_u8(buf, cfg.prefetch as u8);
    put_u8(buf, cfg.partial_decode as u8);
    match &cfg.remote {
        Some(remote) => {
            put_u8(buf, 1);
            put_u32(buf, remote.endpoints.len() as u32);
            for ep in &remote.endpoints {
                put_str(buf, ep);
            }
            put_u32(buf, remote.connect_attempts);
            put_u64(buf, remote.connect_backoff_ms);
            put_opt_u64(buf, remote.io_timeout_ms);
        }
        None => put_u8(buf, 0),
    }
    Ok(())
}

/// Decode a [`SimConfig`] from `cur` (the inverse of [`put_sim_config`]).
pub fn take_sim_config(cur: &mut Cursor) -> Result<SimConfig, NetError> {
    let block_log2 = cur.take_u32()?;
    let ranks_log2 = cur.take_u32()?;
    let threads_per_rank = take_opt_u64(cur)?.map(|t| t as usize);
    let memory_budget = take_opt_u64(cur)?;
    let lossy_codec = {
        let id = cur.take_u8()?;
        CodecId::from_u8(id).ok_or_else(|| NetError::Corrupt(format!("unknown codec id {id}")))?
    };
    let n = cur.take_count(9)?;
    let mut ladder = Vec::with_capacity(n);
    for _ in 0..n {
        ladder.push(take_bound(cur)?);
    }
    let cache_lines = cur.take_u64()? as usize;
    let cache_auto_disable_after = cur.take_u64()?;
    let recompress_on_escalate = cur.take_u8()? != 0;
    let modeled_link_bandwidth = if cur.take_u8()? != 0 {
        Some(cur.take_f64()?)
    } else {
        None
    };
    let fusion = cur.take_u8()? != 0;
    let max_batch_gates = cur.take_u64()? as usize;
    let spill = if cur.take_u8()? != 0 {
        let resident_blocks = cur.take_u64()? as usize;
        let dir = if cur.take_u8()? != 0 {
            Some(PathBuf::from(cur.take_str()?))
        } else {
            None
        };
        let eviction = match cur.take_u8()? {
            EVICTION_LRU => Eviction::Lru,
            EVICTION_PLANNED_MIN => Eviction::PlannedMin,
            t => return Err(NetError::Corrupt(format!("unknown eviction tag {t}"))),
        };
        let write_behind = cur.take_u8()? != 0;
        let shards = cur.take_u64()? as usize;
        Some(SpillConfig {
            resident_blocks,
            dir,
            eviction,
            write_behind,
            shards,
        })
    } else {
        None
    };
    let prefetch = cur.take_u8()? != 0;
    let partial_decode = cur.take_u8()? != 0;
    let remote = if cur.take_u8()? != 0 {
        let n = cur.take_count(1)?;
        let mut endpoints = Vec::with_capacity(n);
        for _ in 0..n {
            endpoints.push(cur.take_str()?.to_string());
        }
        Some(RemoteConfig {
            endpoints,
            connect_attempts: cur.take_u32()?,
            connect_backoff_ms: cur.take_u64()?,
            io_timeout_ms: take_opt_u64(cur)?,
        })
    } else {
        None
    };
    Ok(SimConfig {
        block_log2,
        ranks_log2,
        threads_per_rank,
        memory_budget,
        lossy_codec,
        ladder,
        cache_lines,
        cache_auto_disable_after,
        recompress_on_escalate,
        modeled_link_bandwidth,
        fusion,
        max_batch_gates,
        spill,
        prefetch,
        partial_decode,
        remote,
    })
}

/// Append a [`SimReport`] to `buf`. Infallible: every report encodes.
pub fn put_sim_report(buf: &mut Vec<u8>, report: &SimReport) {
    put_u32(buf, report.num_qubits);
    put_u64(buf, report.gates as u64);
    put_duration(buf, report.wall_time);
    put_breakdown(buf, &report.breakdown);
    put_f64(buf, report.fidelity_lower_bound);
    put_bound(buf, report.current_bound);
    put_u64(buf, report.escalations);
    put_f64(buf, report.min_compression_ratio);
    put_u64(buf, report.peak_memory_bytes);
    // u128 as two u64 halves, high first.
    put_u64(buf, (report.uncompressed_bytes >> 64) as u64);
    put_u64(buf, report.uncompressed_bytes as u64);
    for v in [
        report.cache_hits,
        report.cache_misses,
        report.bytes_exchanged,
        report.comm_ns,
        report.exchanges,
        report.spills,
        report.fetches,
        report.spill_bytes,
        report.fetch_bytes,
        report.spill_io_ns,
        report.prefetch_hits,
        report.prefetch_misses,
        report.blocking_fetch_bytes,
        report.overlapped_fetch_bytes,
        report.prefetch_ns,
        report.write_behind_spills,
        report.write_behind_bytes,
        report.write_behind_ns,
        report.partial_decodes,
        report.segments_decoded,
        report.segments_full,
        report.segment_bytes_read,
        report.segment_bytes_full,
        report.codec_allocs,
        report.codec_bytes_alloc,
        report.scratch_reuse_hits,
    ] {
        put_u64(buf, v);
    }
}

/// Decode a [`SimReport`] from `cur` (the inverse of [`put_sim_report`]).
pub fn take_sim_report(cur: &mut Cursor) -> Result<SimReport, NetError> {
    let num_qubits = cur.take_u32()?;
    let gates = cur.take_u64()? as usize;
    let wall_time = Duration::from_nanos(cur.take_u64()?);
    let breakdown = take_breakdown(cur)?;
    let fidelity_lower_bound = cur.take_f64()?;
    let current_bound = take_bound(cur)?;
    let escalations = cur.take_u64()?;
    let min_compression_ratio = cur.take_f64()?;
    let peak_memory_bytes = cur.take_u64()?;
    let uncompressed_bytes = ((cur.take_u64()? as u128) << 64) | cur.take_u64()? as u128;
    Ok(SimReport {
        num_qubits,
        gates,
        wall_time,
        breakdown,
        fidelity_lower_bound,
        current_bound,
        escalations,
        min_compression_ratio,
        peak_memory_bytes,
        uncompressed_bytes,
        cache_hits: cur.take_u64()?,
        cache_misses: cur.take_u64()?,
        bytes_exchanged: cur.take_u64()?,
        comm_ns: cur.take_u64()?,
        exchanges: cur.take_u64()?,
        spills: cur.take_u64()?,
        fetches: cur.take_u64()?,
        spill_bytes: cur.take_u64()?,
        fetch_bytes: cur.take_u64()?,
        spill_io_ns: cur.take_u64()?,
        prefetch_hits: cur.take_u64()?,
        prefetch_misses: cur.take_u64()?,
        blocking_fetch_bytes: cur.take_u64()?,
        overlapped_fetch_bytes: cur.take_u64()?,
        prefetch_ns: cur.take_u64()?,
        write_behind_spills: cur.take_u64()?,
        write_behind_bytes: cur.take_u64()?,
        write_behind_ns: cur.take_u64()?,
        partial_decodes: cur.take_u64()?,
        segments_decoded: cur.take_u64()?,
        segments_full: cur.take_u64()?,
        segment_bytes_read: cur.take_u64()?,
        segment_bytes_full: cur.take_u64()?,
        codec_allocs: cur.take_u64()?,
        codec_bytes_alloc: cur.take_u64()?,
        scratch_reuse_hits: cur.take_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Eviction;

    #[test]
    fn config_round_trips_with_all_options_set() {
        let cfg = SimConfig::default()
            .with_block_log2(10)
            .with_ranks_log2(2)
            .with_memory_budget(1 << 24)
            .with_spill(4)
            .with_spill_dir(PathBuf::from("/tmp/qcs-spill"))
            .with_eviction(Eviction::PlannedMin)
            .with_write_behind(true)
            .with_spill_shards(4)
            .with_remote(vec!["127.0.0.1:9000"]);
        let mut buf = Vec::new();
        put_sim_config(&mut buf, &cfg).unwrap();
        let mut cur = Cursor::new(&buf);
        let back = take_sim_config(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn config_round_trips_defaults() {
        let cfg = SimConfig::default();
        let mut buf = Vec::new();
        put_sim_config(&mut buf, &cfg).unwrap();
        let back = take_sim_config(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn report_round_trips() {
        let report = SimReport {
            num_qubits: 20,
            gates: 1234,
            wall_time: Duration::from_millis(42),
            breakdown: Default::default(),
            fidelity_lower_bound: 0.99,
            current_bound: qcs_compress::ErrorBound::Absolute(1e-4),
            escalations: 2,
            min_compression_ratio: 3.5,
            peak_memory_bytes: 1 << 20,
            uncompressed_bytes: (1u128 << 70) | 99,
            cache_hits: 1,
            cache_misses: 2,
            bytes_exchanged: 3,
            comm_ns: 4,
            exchanges: 5,
            spills: 6,
            fetches: 7,
            spill_bytes: 8,
            fetch_bytes: 9,
            spill_io_ns: 10,
            prefetch_hits: 11,
            prefetch_misses: 12,
            blocking_fetch_bytes: 13,
            overlapped_fetch_bytes: 14,
            prefetch_ns: 15,
            write_behind_spills: 16,
            write_behind_bytes: 17,
            write_behind_ns: 18,
            partial_decodes: 19,
            segments_decoded: 20,
            segments_full: 21,
            segment_bytes_read: 22,
            segment_bytes_full: 23,
            codec_allocs: 24,
            codec_bytes_alloc: 25,
            scratch_reuse_hits: 26,
        };
        let mut buf = Vec::new();
        put_sim_report(&mut buf, &report);
        let mut cur = Cursor::new(&buf);
        let back = take_sim_report(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn truncated_config_is_a_typed_error() {
        let mut buf = Vec::new();
        put_sim_config(&mut buf, &SimConfig::default()).unwrap();
        for len in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..len]);
            match take_sim_config(&mut cur) {
                Err(NetError::Corrupt(_)) | Err(NetError::Protocol(_)) => {}
                Ok(_) => panic!("truncation to {len} bytes decoded successfully"),
                Err(e) => panic!("unexpected error kind at {len}: {e}"),
            }
        }
    }
}
