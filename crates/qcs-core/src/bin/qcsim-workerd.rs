//! `qcsim-workerd` — the rank-worker daemon for multi-node simulation.
//!
//! Listens for coordinator connections and hosts one `RankWorker` per
//! connection, built from the coordinator's handshake (rank, geometry,
//! config, and the rank's initial compressed blocks). Point a simulator
//! at one or more daemons with
//! [`SimConfig::with_remote`](qcs_core::SimConfig::with_remote).
//!
//! ```text
//! qcsim-workerd [--listen ADDR] [--max-conns N] [--spill-dir DIR]
//! ```
//!
//! - `--listen` — bind address, default `127.0.0.1:0` (an ephemeral
//!   loopback port; the bound address is printed on stdout).
//! - `--max-conns` — exit after serving this many connections (default:
//!   serve forever).
//! - `--spill-dir` — where spilling ranks keep their segment directories
//!   (default: the system temp directory).

use qcs_core::ServeOptions;
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage(program: &str) -> String {
    format!("usage: {program} [--listen ADDR] [--max-conns N] [--spill-dir DIR]")
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let program = args.next().unwrap_or_else(|| "qcsim-workerd".into());
    let mut listen = "127.0.0.1:0".to_string();
    let mut opts = ServeOptions::default();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage(&program)))
        };
        match arg.as_str() {
            "--listen" => match value("--listen") {
                Ok(v) => listen = v,
                Err(e) => return fail(&e),
            },
            "--max-conns" => match value("--max-conns")
                .and_then(|v| v.parse::<usize>().map_err(|e| format!("--max-conns: {e}")))
            {
                Ok(v) => opts.max_conns = Some(v),
                Err(e) => return fail(&e),
            },
            "--spill-dir" => match value("--spill-dir") {
                Ok(v) => opts.spill_dir = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--help" | "-h" => {
                println!("{}", usage(&program));
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other}\n{}", usage(&program))),
        }
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => return fail(&format!("bind {listen}: {e}")),
    };
    match listener.local_addr() {
        Ok(addr) => {
            // Scripts and tests read this line to learn the ephemeral port
            // (the qcs_net::banner handshake).
            println!("{}", qcs_net::banner::announce("qcsim-workerd", &addr));
            let _ = std::io::stdout().flush();
        }
        Err(e) => return fail(&format!("local_addr: {e}")),
    }
    if let Err(e) = qcs_core::serve(listener, opts) {
        return fail(&format!("serve: {e}"));
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("qcsim-workerd: {msg}");
    ExitCode::FAILURE
}
