//! Plan-vs-observed property suite: the schedule's `AccessPlan` must
//! predict, exactly and in order, the block slots every wave touches on
//! every rank — plans are neither stale (missing touches) nor speculative
//! (claiming touches that never happen).
//!
//! Each scheduled item is applied against a simulator whose per-rank
//! stores are wrapped in the recording shim from [`crate::store::trace`];
//! after every item the observed per-rank slot sequences are drained and
//! compared against the concatenation of the item's planned waves. The
//! sweep covers all five benchmark circuit families at one, two, and four
//! rank workers, fusion on, which exercises in-block, inter-block and
//! inter-rank gate waves, batch waves, and the bare swap/measure
//! expansions.

use crate::engine::CompressedSimulator;
use crate::store::trace;
use crate::SimConfig;
use qcs_circuits::supremacy::{random_circuit, Grid};
use qcs_circuits::{
    grover_circuit, phase_estimation_circuit, qaoa_circuit, qft_benchmark_circuit,
    random_regular_graph, schedule_circuit, AccessPlan, Circuit, QaoaParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The five benchmark families at harness scale (kept small: this suite
/// runs every family at three rank counts in debug builds).
fn families() -> Vec<(&'static str, Circuit, u32)> {
    vec![
        ("qft", qft_benchmark_circuit(9, 5), 3),
        ("grover", grover_circuit(7, 0b101_1010 & 0x7f, 4), 3),
        (
            "qaoa",
            qaoa_circuit(&random_regular_graph(9, 4, 5), &QaoaParams::standard(1)),
            3,
        ),
        ("phase_estimation", phase_estimation_circuit(6, 0.15625), 3),
        ("supremacy", random_circuit(Grid::new(3, 3), 8, 2), 3),
    ]
}

#[test]
fn access_plan_matches_observed_store_accesses() {
    for (name, circuit, block_log2) in families() {
        let n = circuit.num_qubits() as u32;
        for ranks_log2 in [0u32, 1, 2] {
            let cfg = SimConfig::default()
                .with_block_log2(block_log2)
                .with_ranks_log2(ranks_log2);
            let schedule = schedule_circuit(&circuit, &cfg.fusion_policy());
            let plan = AccessPlan::for_schedule(&schedule, ranks_log2, block_log2);
            assert_eq!(plan.len(), schedule.items().len());

            let log = trace::access_log(1 << ranks_log2);
            let mut sim = CompressedSimulator::new_traced(n, cfg, log.clone()).expect("sim");
            let mut rng = StdRng::seed_from_u64(2019);
            for (i, item) in schedule.items().iter().enumerate() {
                sim.apply_item(item, &mut rng, None).expect("apply item");
                let observed = trace::drain(&log);
                let planned: Vec<Vec<usize>> = (0..plan.ranks())
                    .map(|r| {
                        plan.item_waves(i)
                            .iter()
                            .flat_map(|w| w.per_rank[r].iter().copied())
                            .collect()
                    })
                    .collect();
                assert_eq!(
                    observed, planned,
                    "{name}: ranks_log2={ranks_log2}, scheduled item {i} ({item:?})"
                );
            }
        }
    }
}

#[test]
fn access_plan_is_exact_through_the_spill_tier_too() {
    // The plan describes *logical* accesses, so it must be invariant to
    // the storage tier: the same circuit over a 2-block residency budget
    // observes the same slot sequences.
    let circuit = qft_benchmark_circuit(8, 4);
    let cfg = SimConfig::default()
        .with_block_log2(3)
        .with_ranks_log2(1)
        .with_spill(2)
        .with_prefetch(false); // hints are advisory; keep the trace strict
    let schedule = schedule_circuit(&circuit, &cfg.fusion_policy());
    let plan = AccessPlan::for_schedule(&schedule, 1, 3);
    let log = trace::access_log(2);
    let mut sim = CompressedSimulator::new_traced(8, cfg, log.clone()).expect("sim");
    // Seeding a spill store puts blocks through the shim-wrapped store
    // only after wrapping; drain anything recorded during construction.
    let _ = trace::drain(&log);
    let mut rng = StdRng::seed_from_u64(7);
    for (i, item) in schedule.items().iter().enumerate() {
        sim.apply_item(item, &mut rng, None).expect("apply item");
        let observed = trace::drain(&log);
        let planned: Vec<Vec<usize>> = (0..plan.ranks())
            .map(|r| {
                plan.item_waves(i)
                    .iter()
                    .flat_map(|w| w.per_rank[r].iter().copied())
                    .collect()
            })
            .collect();
        assert_eq!(observed, planned, "spilled run diverged at item {i}");
    }
    assert!(
        sim.report().spills > 0,
        "precondition: the run must actually spill"
    );
}
