//! # qcs-core
//!
//! The paper's primary contribution: a Schrödinger-style full-state quantum
//! circuit simulator whose state vector lives in **compressed blocks**,
//! trading computation time and (bounded) fidelity for memory space.
//!
//! Key pieces, each mapping to a section of the paper:
//!
//! - [`CompressedSimulator`] — the facade over the engine: routing,
//!   scheduling, ladder/ledger bookkeeping (§3.1-§3.3, Fig. 2/3). Per-rank
//!   state lives in a private `worker` module: each rank worker owns
//!   exactly its `blocks_per_rank` compressed blocks, and with
//!   `ranks_log2 >= 1` the workers run on dedicated threads under
//!   [`qcs_cluster::exec::ClusterSim`], exchanging **compressed** payloads
//!   for rank-crossing gates (the paper's MPI seam);
//! - [`SimConfig`] — block/rank geometry, memory budget, error-bound
//!   ladder (§3.7), cache size (§3.4), out-of-core residency budget;
//! - [`store`] — the block storage tiers behind the workers: [`MemStore`]
//!   (all-resident, the paper's regime) and [`SpillStore`] (hot blocks
//!   under a residency budget, cold blocks in per-rank segment files of
//!   checksummed frames, optionally sharded), so the simulable size is
//!   bounded by disk rather than RAM. Out-of-core runs are *planned*: the
//!   schedule's `AccessPlan` fixes every wave's block order ahead of time,
//!   each store's background fetcher streams the next chunk off disk
//!   while the current one computes ([`SimConfig::prefetch`]), a
//!   write-behind thread drains eviction writes off the critical path
//!   (`SpillConfig::write_behind`), and the same plan drives victim
//!   selection: [`Eviction::PlannedMin`] implements Belady's MIN exactly
//!   because the future access trace is known ([`EvictionPolicy`]);
//! - [`BlockCache`] — the 64-line LRU compressed-block cache with
//!   auto-disable (§3.4, Fig. 4);
//! - [`FidelityLedger`] — the `prod (1 - delta_i)` fidelity lower bound
//!   (§3.8, Eq. 10/11, Fig. 6);
//! - [`checkpoint`] — save/resume of compressed blocks (§3.5);
//! - memory accounting per Eq. 8 and the time breakdown of Table 2.
//!
//! ## The batch scheduler
//!
//! Per-gate cost in this engine is dominated by the decompress → compute →
//! recompress cycle, not the arithmetic (Table 2). By default every circuit
//! therefore runs through the batch scheduler
//! (`qcs_circuits::schedule`) before execution:
//!
//! - **What fuses:** runs of consecutive single-qubit gates on the same
//!   qubit become one matrix product, paying one cycle instead of one per
//!   gate.
//! - **What batches:** consecutive gates whose targets all route
//!   *intra-block* (§3.3 case (a), i.e. target qubit `< block_log2`) form a
//!   `GateBatch`; the engine decompresses each block once per batch,
//!   applies every member gate that selects the block, and recompresses
//!   once. A batched recompression is also a single lossy event, so the
//!   Eq. 11 fidelity ledger is charged once per batch.
//! - **What retargets:** controlled diagonal-phase gates (`CZ`, `CS`,
//!   `CT`, `CPhase`, multi-controlled Z) are symmetric under
//!   control/target exchange, so the scheduler re-orients them onto their
//!   lowest qubit — the QFT's high-target cphase cascades become
//!   intra-block (batchable) and rank-crossing phase gates stop paying
//!   communication.
//! - **What blocks fusion/batching:** two-qubit, controlled (for fusion),
//!   swap and measure ops, and any non-symmetric target routing
//!   inter-block/inter-rank (for batching). The scheduler never reorders
//!   operations.
//! - **How to disable it:** [`SimConfig::without_fusion`] (or
//!   `fusion: false`) reproduces the paper's strict gate-at-a-time
//!   pipeline; [`SimConfig::with_max_batch_gates`]`(1)` keeps fusion but
//!   disables batching.
//!
//! Cache keys stay sound under batching: a batch's compressed-block cache
//! line is keyed by the batch signature *and* the per-block selection mask,
//! so byte-identical blocks with different applicable-gate subsets never
//! share a line, and the hit/miss counters advance once per block touch
//! (not once per fused gate). `Metrics::gates_per_block_touch` reports the
//! amortization factor actually achieved.
//!
//! ## Example
//!
//! ```
//! use qcs_core::{CompressedSimulator, SimConfig};
//! use qcs_circuits::Circuit;
//! use rand::SeedableRng;
//!
//! let mut circuit = Circuit::new(8);
//! circuit.h(0).cx(0, 7); // Bell pair across the rank boundary
//! let cfg = SimConfig::default().with_block_log2(4).with_ranks_log2(1);
//! let mut sim = CompressedSimulator::new(8, cfg).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! sim.run(&circuit, &mut rng).unwrap();
//! assert!((sim.prob_one(7).unwrap() - 0.5).abs() < 1e-12);
//! println!("compression ratio: {:.1}", sim.report().min_compression_ratio);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod fidelity_bound;
pub mod net;
mod partial;
#[cfg(test)]
mod plan_check;
pub mod serial;
pub mod store;
mod worker;

pub use block::{BlockCodec, CompressedBlock};
pub use cache::BlockCache;
pub use config::{RemoteConfig, SimConfig, SpillConfig};
pub use engine::{CompressedSimulator, RunOutcome, SimError, SimReport, WaveControl, WaveStatus};
pub use fidelity_bound::{fidelity_curve, FidelityLedger};
pub use net::{serve, spawn_loopback, ServeOptions};
pub use serial::{put_sim_config, put_sim_report, take_sim_config, take_sim_report};
pub use store::{
    BlockStore, Eviction, EvictionPolicy, Lru, MemStore, PlannedMin, SegmentDirGuard, SpillOptions,
    SpillStore,
};
