//! # qcs-core
//!
//! The paper's primary contribution: a Schrödinger-style full-state quantum
//! circuit simulator whose state vector lives in **compressed blocks**,
//! trading computation time and (bounded) fidelity for memory space.
//!
//! Key pieces, each mapping to a section of the paper:
//!
//! - [`CompressedSimulator`] — blocked compressed state + gate engine
//!   (§3.1-§3.3, Fig. 2/3);
//! - [`SimConfig`] — block/rank geometry, memory budget, error-bound
//!   ladder (§3.7), cache size (§3.4);
//! - [`BlockCache`] — the 64-line LRU compressed-block cache with
//!   auto-disable (§3.4, Fig. 4);
//! - [`FidelityLedger`] — the `prod (1 - delta_i)` fidelity lower bound
//!   (§3.8, Eq. 10/11, Fig. 6);
//! - [`checkpoint`] — save/resume of compressed blocks (§3.5);
//! - memory accounting per Eq. 8 and the time breakdown of Table 2.
//!
//! ## Example
//!
//! ```
//! use qcs_core::{CompressedSimulator, SimConfig};
//! use qcs_circuits::Circuit;
//! use rand::SeedableRng;
//!
//! let mut circuit = Circuit::new(8);
//! circuit.h(0).cx(0, 7); // Bell pair across the rank boundary
//! let cfg = SimConfig::default().with_block_log2(4).with_ranks_log2(1);
//! let mut sim = CompressedSimulator::new(8, cfg).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! sim.run(&circuit, &mut rng).unwrap();
//! assert!((sim.prob_one(7).unwrap() - 0.5).abs() < 1e-12);
//! println!("compression ratio: {:.1}", sim.report().min_compression_ratio);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod fidelity_bound;

pub use block::{BlockCodec, CompressedBlock};
pub use cache::BlockCache;
pub use config::SimConfig;
pub use engine::{CompressedSimulator, SimError, SimReport};
pub use fidelity_bound::{fidelity_curve, FidelityLedger};
