//! Socket transport for the `WorkerCmd` protocol (`crate::worker`): the
//! facade's rank workers hosted in another process (or on another
//! machine) behind `qcsim-workerd`, driven over TCP.
//!
//! The in-process backend pairs the facade with its `RankWorker`s over
//! channels; this module replaces each worker with a
//! `RemoteWorkerClient` stub speaking length-prefixed frames
//! ([`qcs_net`]) to a daemon that hosts the real worker. The seam is the
//! same [`qcs_cluster::exec::Worker`] trait, so the facade's wave
//! choreography — and its metrics accounting — is unchanged.
//!
//! ## Protocol
//!
//! One TCP connection per rank, strictly sequenced (at most one command
//! in flight):
//!
//! ```text
//!  coordinator (ClusterSim thread)           qcsim-workerd daemon
//!  ──────────────────────────────            ────────────────────
//!  Hello  {version, rank, layout,     ─▶     validate; build the rank's
//!          config subset, block table}        RankWorker (own metrics,
//!                                   ◀─ HelloAck cache, store/spill dir)
//!  Cmd    {serialized WorkerCmd}      ─▶     worker.handle(cmd)
//!          ... Relay frames both ways
//!              during an exchange ...
//!                                   ◀─ Done  {result, metrics delta}
//!  ...
//!  Shutdown                           ─▶     drop worker, close
//! ```
//!
//! An inter-rank exchange is bridged through the coordinator: the two
//! paired `RemoteWorkerClient`s still share the engine's in-process
//! duplex link, and each end relays between that link and its own socket
//! with `Relay` frames (block index + the compressed-block frame). On the
//! daemon, a fresh local duplex stands in for the worker's link, with one
//! relay thread per direction bridging it to the socket. Compressed
//! bytes — and only compressed bytes — cross every hop, exactly the
//! paper's MPI exchange with the coordinator standing in for the fabric.
//!
//! End-of-stream is deliberately asymmetric to avoid a two-daemon
//! deadlock: a daemon finishes its worker, joins its outbound relay, and
//! sends `Done` *before* joining its inbound relay; the coordinator drops
//! its link sender only after `Done` arrives, which lets the peer's
//! forwarder send `ExchangeEof` and the daemon's inbound relay exit.
//!
//! ## Supervision
//!
//! Connection establishment retries with bounded exponential backoff
//! ([`RemoteConfig`]); established streams carry read/write timeouts.
//! Mid-run connection loss is fatal to the simulation (the rank's state
//! is gone — the same semantics as a lost MPI rank) but never a panic: it
//! surfaces as a typed [`SimError`] from the wave that observed it, and
//! the daemon side drops the dead rank's worker, which removes any spill
//! segment files it owned.

use crate::block::{BlockCodec, CompressedBlock};
use crate::cache::BlockCache;
use crate::config::{RemoteConfig, SimConfig, SpillConfig};
use crate::engine::SimError;
use crate::store::{BlockStore, MemStore, SegmentDirGuard, SpillOptions, SpillStore};
use crate::worker::{
    BatchCmd, BatchPlan, BlockMsg, ExchangeCmd, ExchangeRole, GateCmd, Lookahead, RankWorker,
    WaveOut, WorkerCmd, WorkerOut,
};
use qcs_cluster::exec::Worker as _;
use qcs_cluster::{
    duplex, ControlScope, Duplex, DuplexRx, DuplexTx, Layout, Metrics, Route, TimeBreakdown,
};
use qcs_compress::frame as cframe;
use qcs_compress::{CodecId, ErrorBound};
use qcs_net::wire::{put_f64, put_str, put_u32, put_u64, put_u8};
use qcs_net::{recv_frame, send_frame, Cursor, NetError, PROTOCOL_VERSION};
use qcs_statevec::{Complex64, Gate1};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

// Frame kinds of the worker protocol (the `kind` byte of each qcs-net
// frame).
const K_HELLO: u8 = 1;
const K_HELLO_ACK: u8 = 2;
const K_CMD: u8 = 3;
const K_DONE: u8 = 4;
const K_RELAY: u8 = 5;
const K_EXCHANGE_EOF: u8 = 6;
const K_SHUTDOWN: u8 = 7;

/// Assemble one frame in memory and ship it with a single `write_all`, so
/// a frame is one syscall instead of five header writes.
fn write_frame_to(stream: &mut TcpStream, kind: u8, body: &[u8]) -> Result<(), NetError> {
    let mut buf = Vec::with_capacity(qcs_net::HEADER_LEN + body.len());
    send_frame(&mut buf, kind, body)?;
    stream.write_all(&buf)?;
    Ok(())
}

fn transport_err(rank: usize, context: &str, e: impl std::fmt::Display) -> SimError {
    SimError::Transport(format!("rank {rank}: {context}: {e}"))
}

// --- field codecs --------------------------------------------------------

pub(crate) fn put_bound(buf: &mut Vec<u8>, bound: ErrorBound) {
    put_u8(buf, bound.tag());
    put_f64(buf, bound.magnitude());
}

pub(crate) fn take_bound(cur: &mut Cursor) -> Result<ErrorBound, NetError> {
    let tag = cur.take_u8()?;
    let magnitude = cur.take_f64()?;
    ErrorBound::from_tag(tag, magnitude)
        .ok_or_else(|| NetError::Corrupt(format!("unknown error-bound tag {tag}")))
}

fn put_gate(buf: &mut Vec<u8>, gate: &Gate1) {
    for row in &gate.m {
        for c in row {
            put_f64(buf, c.re);
            put_f64(buf, c.im);
        }
    }
}

fn take_gate(cur: &mut Cursor) -> Result<Gate1, NetError> {
    let mut m = [[Complex64::ZERO; 2]; 2];
    for row in &mut m {
        for c in row.iter_mut() {
            *c = Complex64 {
                re: cur.take_f64()?,
                im: cur.take_f64()?,
            };
        }
    }
    Ok(Gate1 { m })
}

fn put_route(buf: &mut Vec<u8>, route: Route) {
    match route {
        Route::InBlock { offset_bit } => {
            put_u8(buf, 0);
            put_u32(buf, offset_bit);
        }
        Route::InterBlock { block_stride } => {
            put_u8(buf, 1);
            put_u64(buf, block_stride as u64);
        }
        Route::InterRank { rank_stride } => {
            put_u8(buf, 2);
            put_u64(buf, rank_stride as u64);
        }
    }
}

fn take_route(cur: &mut Cursor) -> Result<Route, NetError> {
    match cur.take_u8()? {
        0 => Ok(Route::InBlock {
            offset_bit: cur.take_u32()?,
        }),
        1 => Ok(Route::InterBlock {
            block_stride: cur.take_u64()? as usize,
        }),
        2 => Ok(Route::InterRank {
            rank_stride: cur.take_u64()? as usize,
        }),
        t => Err(NetError::Corrupt(format!("unknown route tag {t}"))),
    }
}

fn put_scope(buf: &mut Vec<u8>, scope: ControlScope) {
    match scope {
        ControlScope::InBlock { offset_bit } => {
            put_u8(buf, 0);
            put_u32(buf, offset_bit);
        }
        ControlScope::BlockSelect { block_bit } => {
            put_u8(buf, 1);
            put_u32(buf, block_bit);
        }
        ControlScope::RankSelect { rank_bit } => {
            put_u8(buf, 2);
            put_u32(buf, rank_bit);
        }
    }
}

fn take_scope(cur: &mut Cursor) -> Result<ControlScope, NetError> {
    let tag = cur.take_u8()?;
    let bit = cur.take_u32()?;
    match tag {
        0 => Ok(ControlScope::InBlock { offset_bit: bit }),
        1 => Ok(ControlScope::BlockSelect { block_bit: bit }),
        2 => Ok(ControlScope::RankSelect { rank_bit: bit }),
        t => Err(NetError::Corrupt(format!("unknown scope tag {t}"))),
    }
}

fn put_lookahead(buf: &mut Vec<u8>, lookahead: &Lookahead) {
    match lookahead {
        Some(slots) => {
            put_u8(buf, 1);
            put_u32(buf, slots.len() as u32);
            for &s in slots.iter() {
                put_u64(buf, s as u64);
            }
        }
        None => put_u8(buf, 0),
    }
}

fn take_lookahead(cur: &mut Cursor) -> Result<Lookahead, NetError> {
    if cur.take_u8()? == 0 {
        return Ok(None);
    }
    let n = cur.take_count(8)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(cur.take_u64()? as usize);
    }
    Ok(Some(Arc::new(slots)))
}

/// A compressed block travels as a `qcs_compress` block frame embedded in
/// the message body — codec id, error bound, checksum, and payload in the
/// exact on-disk format, so the spill tier and the wire share one
/// encoding.
fn put_block(buf: &mut Vec<u8>, block: &CompressedBlock) {
    cframe::write_frame(buf, block.codec, block.bound, &block.bytes)
        .expect("in-memory block frame write cannot fail");
}

fn take_block(cur: &mut Cursor) -> Result<CompressedBlock, NetError> {
    let mut r = cur.rest();
    let before = r.len();
    let frame = cframe::read_frame(&mut r)
        .map_err(|e| NetError::Corrupt(format!("embedded block frame: {e}")))?;
    cur.skip(before - r.len())?;
    Ok(CompressedBlock {
        codec: frame.codec,
        bound: frame.bound,
        bytes: frame.payload.into(),
    })
}

pub(crate) fn put_duration(buf: &mut Vec<u8>, d: Duration) {
    put_u64(buf, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

pub(crate) fn put_breakdown(buf: &mut Vec<u8>, b: &TimeBreakdown) {
    put_duration(buf, b.compression);
    put_duration(buf, b.decompression);
    put_duration(buf, b.communication);
    put_duration(buf, b.computation);
    put_duration(buf, b.spill_io);
    put_duration(buf, b.prefetch);
    put_duration(buf, b.write_behind);
    for v in [
        b.comm_bytes,
        b.exchanges,
        b.block_touches,
        b.batched_gate_applications,
        b.spills,
        b.fetches,
        b.spill_bytes,
        b.fetch_bytes,
        b.prefetch_hits,
        b.prefetch_misses,
        b.blocking_fetch_bytes,
        b.overlapped_fetch_bytes,
        b.write_behind_spills,
        b.write_behind_bytes,
        b.partial_decodes,
        b.segments_decoded,
        b.segments_full,
        b.segment_bytes_read,
        b.segment_bytes_full,
        b.codec_allocs,
        b.codec_bytes_alloc,
        b.scratch_reuse_hits,
    ] {
        put_u64(buf, v);
    }
}

pub(crate) fn take_breakdown(cur: &mut Cursor) -> Result<TimeBreakdown, NetError> {
    let mut d = || -> Result<Duration, NetError> { Ok(Duration::from_nanos(cur.take_u64()?)) };
    let (compression, decompression, communication, computation) = (d()?, d()?, d()?, d()?);
    let (spill_io, prefetch, write_behind) = (d()?, d()?, d()?);
    Ok(TimeBreakdown {
        compression,
        decompression,
        communication,
        computation,
        spill_io,
        prefetch,
        write_behind,
        comm_bytes: cur.take_u64()?,
        exchanges: cur.take_u64()?,
        block_touches: cur.take_u64()?,
        batched_gate_applications: cur.take_u64()?,
        spills: cur.take_u64()?,
        fetches: cur.take_u64()?,
        spill_bytes: cur.take_u64()?,
        fetch_bytes: cur.take_u64()?,
        prefetch_hits: cur.take_u64()?,
        prefetch_misses: cur.take_u64()?,
        blocking_fetch_bytes: cur.take_u64()?,
        overlapped_fetch_bytes: cur.take_u64()?,
        write_behind_spills: cur.take_u64()?,
        write_behind_bytes: cur.take_u64()?,
        partial_decodes: cur.take_u64()?,
        segments_decoded: cur.take_u64()?,
        segments_full: cur.take_u64()?,
        segment_bytes_read: cur.take_u64()?,
        segment_bytes_full: cur.take_u64()?,
        codec_allocs: cur.take_u64()?,
        codec_bytes_alloc: cur.take_u64()?,
        scratch_reuse_hits: cur.take_u64()?,
    })
}

// --- command / response codecs ------------------------------------------

const CMD_GATE: u8 = 0;
const CMD_EXCHANGE: u8 = 1;
const CMD_BATCH: u8 = 2;
const CMD_COLLAPSE: u8 = 3;
const CMD_RECOMPRESS: u8 = 4;
const CMD_PROB_ONE: u8 = 5;
const CMD_NORM_SQR: u8 = 6;
const CMD_WEIGHTS: u8 = 7;
const CMD_FETCH_BLOCK: u8 = 8;
const CMD_SNAPSHOT: u8 = 9;
const CMD_EXPECTATION_ZZ: u8 = 10;
const CMD_NOP: u8 = 11;

const ROLE_IDLE: u8 = 0;
const ROLE_LEAD: u8 = 1;
const ROLE_FOLLOW: u8 = 2;

/// Serialize a command for the wire. An exchange command's duplex link
/// cannot travel: the link is handed back to the caller (to bridge with
/// Relay frames) and only the role tag is encoded.
fn encode_cmd(cmd: WorkerCmd) -> (Vec<u8>, Option<Duplex<BlockMsg>>) {
    let mut buf = Vec::new();
    let mut link = None;
    match cmd {
        WorkerCmd::Gate(g) => {
            put_u8(&mut buf, CMD_GATE);
            put_u64(&mut buf, g.signature);
            put_gate(&mut buf, &g.gate);
            put_route(&mut buf, g.route);
            put_u64(&mut buf, g.offset_cmask as u64);
            put_u64(&mut buf, g.block_cmask as u64);
            put_u64(&mut buf, g.rank_cmask as u64);
            put_bound(&mut buf, g.bound);
            put_lookahead(&mut buf, &g.lookahead);
        }
        WorkerCmd::Exchange(x) => {
            put_u8(&mut buf, CMD_EXCHANGE);
            put_u64(&mut buf, x.signature);
            put_gate(&mut buf, &x.gate);
            put_u64(&mut buf, x.offset_cmask as u64);
            put_u64(&mut buf, x.block_cmask as u64);
            put_bound(&mut buf, x.bound);
            let role = match x.role {
                ExchangeRole::Idle => ROLE_IDLE,
                ExchangeRole::Lead(l) => {
                    link = Some(l);
                    ROLE_LEAD
                }
                ExchangeRole::Follow(l) => {
                    link = Some(l);
                    ROLE_FOLLOW
                }
            };
            put_u8(&mut buf, role);
            put_lookahead(&mut buf, &x.lookahead);
        }
        WorkerCmd::Batch(b) => {
            put_u8(&mut buf, CMD_BATCH);
            put_u64(&mut buf, b.signature);
            put_bound(&mut buf, b.bound);
            put_lookahead(&mut buf, &b.lookahead);
            put_u32(&mut buf, b.plans.len() as u32);
            for p in b.plans.iter() {
                put_gate(&mut buf, &p.gate);
                put_u32(&mut buf, p.offset_bit);
                put_u64(&mut buf, p.offset_cmask as u64);
                put_u64(&mut buf, p.block_cmask as u64);
                put_u64(&mut buf, p.rank_cmask as u64);
            }
        }
        WorkerCmd::Collapse {
            scope,
            outcome,
            scale,
            bound,
        } => {
            put_u8(&mut buf, CMD_COLLAPSE);
            put_scope(&mut buf, scope);
            put_u8(&mut buf, outcome as u8);
            put_f64(&mut buf, scale);
            put_bound(&mut buf, bound);
        }
        WorkerCmd::Recompress { bound } => {
            put_u8(&mut buf, CMD_RECOMPRESS);
            put_bound(&mut buf, bound);
        }
        WorkerCmd::ProbOne { scope } => {
            put_u8(&mut buf, CMD_PROB_ONE);
            put_scope(&mut buf, scope);
        }
        WorkerCmd::NormSqr => put_u8(&mut buf, CMD_NORM_SQR),
        WorkerCmd::Weights => put_u8(&mut buf, CMD_WEIGHTS),
        WorkerCmd::FetchBlock { block } => {
            put_u8(&mut buf, CMD_FETCH_BLOCK);
            put_u64(&mut buf, block as u64);
        }
        WorkerCmd::SnapshotBlocks => put_u8(&mut buf, CMD_SNAPSHOT),
        WorkerCmd::ExpectationZz { a, b } => {
            put_u8(&mut buf, CMD_EXPECTATION_ZZ);
            put_u64(&mut buf, a as u64);
            put_u64(&mut buf, b as u64);
        }
        WorkerCmd::Nop => put_u8(&mut buf, CMD_NOP),
    }
    (buf, link)
}

/// A decoded daemon-side command: for an exchange, `bridge` is the local
/// duplex end the connection's relay threads pump (the worker holds the
/// other end inside the command's role).
struct DecodedCmd {
    cmd: WorkerCmd,
    bridge: Option<Duplex<BlockMsg>>,
}

fn decode_cmd(body: &[u8]) -> Result<DecodedCmd, NetError> {
    let mut cur = Cursor::new(body);
    let tag = cur.take_u8()?;
    let mut bridge = None;
    let cmd = match tag {
        CMD_GATE => WorkerCmd::Gate(GateCmd {
            signature: cur.take_u64()?,
            gate: take_gate(&mut cur)?,
            route: take_route(&mut cur)?,
            offset_cmask: cur.take_u64()? as usize,
            block_cmask: cur.take_u64()? as usize,
            rank_cmask: cur.take_u64()? as usize,
            bound: take_bound(&mut cur)?,
            lookahead: take_lookahead(&mut cur)?,
        }),
        CMD_EXCHANGE => {
            let signature = cur.take_u64()?;
            let gate = take_gate(&mut cur)?;
            let offset_cmask = cur.take_u64()? as usize;
            let block_cmask = cur.take_u64()? as usize;
            let bound = take_bound(&mut cur)?;
            let role = match cur.take_u8()? {
                ROLE_IDLE => ExchangeRole::Idle,
                role @ (ROLE_LEAD | ROLE_FOLLOW) => {
                    let (worker_end, bridge_end) = duplex();
                    bridge = Some(bridge_end);
                    if role == ROLE_LEAD {
                        ExchangeRole::Lead(worker_end)
                    } else {
                        ExchangeRole::Follow(worker_end)
                    }
                }
                t => return Err(NetError::Corrupt(format!("unknown exchange role {t}"))),
            };
            WorkerCmd::Exchange(ExchangeCmd {
                signature,
                gate,
                offset_cmask,
                block_cmask,
                bound,
                role,
                lookahead: take_lookahead(&mut cur)?,
            })
        }
        CMD_BATCH => {
            let signature = cur.take_u64()?;
            let bound = take_bound(&mut cur)?;
            let lookahead = take_lookahead(&mut cur)?;
            let n = cur.take_count(1)?;
            let mut plans = Vec::with_capacity(n);
            for _ in 0..n {
                plans.push(BatchPlan {
                    gate: take_gate(&mut cur)?,
                    offset_bit: cur.take_u32()?,
                    offset_cmask: cur.take_u64()? as usize,
                    block_cmask: cur.take_u64()? as usize,
                    rank_cmask: cur.take_u64()? as usize,
                });
            }
            WorkerCmd::Batch(BatchCmd {
                plans: Arc::new(plans),
                signature,
                bound,
                lookahead,
            })
        }
        CMD_COLLAPSE => WorkerCmd::Collapse {
            scope: take_scope(&mut cur)?,
            outcome: cur.take_u8()? != 0,
            scale: cur.take_f64()?,
            bound: take_bound(&mut cur)?,
        },
        CMD_RECOMPRESS => WorkerCmd::Recompress {
            bound: take_bound(&mut cur)?,
        },
        CMD_PROB_ONE => WorkerCmd::ProbOne {
            scope: take_scope(&mut cur)?,
        },
        CMD_NORM_SQR => WorkerCmd::NormSqr,
        CMD_WEIGHTS => WorkerCmd::Weights,
        CMD_FETCH_BLOCK => WorkerCmd::FetchBlock {
            block: cur.take_u64()? as usize,
        },
        CMD_SNAPSHOT => WorkerCmd::SnapshotBlocks,
        CMD_EXPECTATION_ZZ => WorkerCmd::ExpectationZz {
            a: cur.take_u64()? as usize,
            b: cur.take_u64()? as usize,
        },
        CMD_NOP => WorkerCmd::Nop,
        t => return Err(NetError::Corrupt(format!("unknown command tag {t}"))),
    };
    cur.finish()?;
    Ok(DecodedCmd { cmd, bridge })
}

const OUT_WAVE: u8 = 0;
const OUT_SCALAR: u8 = 1;
const OUT_WEIGHTS: u8 = 2;
const OUT_BLOCK: u8 = 3;
const OUT_BLOCKS: u8 = 4;

fn put_worker_out(buf: &mut Vec<u8>, out: &WorkerOut) {
    match out {
        WorkerOut::Wave(w) => {
            put_u8(buf, OUT_WAVE);
            put_u8(buf, w.lossy as u8);
            put_u64(buf, w.comm_bytes);
            put_u64(buf, w.compressed_bytes);
            put_u64(buf, w.resident_bytes);
            put_u64(buf, w.hot_bytes);
        }
        WorkerOut::Scalar(v) => {
            put_u8(buf, OUT_SCALAR);
            put_f64(buf, *v);
        }
        WorkerOut::Weights(w) => {
            put_u8(buf, OUT_WEIGHTS);
            put_u32(buf, w.len() as u32);
            for v in w {
                put_f64(buf, *v);
            }
        }
        WorkerOut::Block(b) => {
            put_u8(buf, OUT_BLOCK);
            put_block(buf, b);
        }
        WorkerOut::Blocks(bs) => {
            put_u8(buf, OUT_BLOCKS);
            put_u32(buf, bs.len() as u32);
            for b in bs {
                put_block(buf, b);
            }
        }
    }
}

fn take_worker_out(cur: &mut Cursor) -> Result<WorkerOut, NetError> {
    match cur.take_u8()? {
        OUT_WAVE => Ok(WorkerOut::Wave(WaveOut {
            lossy: cur.take_u8()? != 0,
            comm_bytes: cur.take_u64()?,
            compressed_bytes: cur.take_u64()?,
            resident_bytes: cur.take_u64()?,
            hot_bytes: cur.take_u64()?,
        })),
        OUT_SCALAR => Ok(WorkerOut::Scalar(cur.take_f64()?)),
        OUT_WEIGHTS => {
            let n = cur.take_count(8)?;
            let mut w = Vec::with_capacity(n);
            for _ in 0..n {
                w.push(cur.take_f64()?);
            }
            Ok(WorkerOut::Weights(w))
        }
        OUT_BLOCK => Ok(WorkerOut::Block(take_block(cur)?)),
        OUT_BLOCKS => {
            let n = cur.take_count(1)?;
            let mut bs = Vec::with_capacity(n);
            for _ in 0..n {
                bs.push(take_block(cur)?);
            }
            Ok(WorkerOut::Blocks(bs))
        }
        t => Err(NetError::Corrupt(format!("unknown response tag {t}"))),
    }
}

/// `Done` body: the metrics delta since the previous `Done`, then the
/// command's result (a response or the worker's error, stringified).
fn encode_done(result: &Result<WorkerOut, SimError>, delta: &TimeBreakdown) -> Vec<u8> {
    let mut buf = Vec::new();
    put_breakdown(&mut buf, delta);
    match result {
        Ok(out) => {
            put_u8(&mut buf, 1);
            put_worker_out(&mut buf, out);
        }
        Err(e) => {
            put_u8(&mut buf, 0);
            put_str(&mut buf, &e.to_string());
        }
    }
    buf
}

fn decode_done(body: &[u8]) -> Result<(TimeBreakdown, Result<WorkerOut, String>), NetError> {
    let mut cur = Cursor::new(body);
    let delta = take_breakdown(&mut cur)?;
    let result = if cur.take_u8()? != 0 {
        Ok(take_worker_out(&mut cur)?)
    } else {
        Err(cur.take_str()?.to_string())
    };
    cur.finish()?;
    Ok((delta, result))
}

fn encode_relay(b: usize, blk: &CompressedBlock) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, b as u64);
    put_block(&mut buf, blk);
    buf
}

fn decode_relay(body: &[u8]) -> Result<BlockMsg, NetError> {
    let mut cur = Cursor::new(body);
    let b = cur.take_u64()? as usize;
    let blk = take_block(&mut cur)?;
    cur.finish()?;
    Ok((b, blk))
}

// --- handshake -----------------------------------------------------------

pub(crate) const EVICTION_LRU: u8 = 0;
pub(crate) const EVICTION_PLANNED_MIN: u8 = 1;

/// Everything the daemon needs to stand up one rank's worker: the rank's
/// identity and geometry, the worker-relevant subset of [`SimConfig`],
/// and the rank's initial compressed block table.
struct Hello {
    rank: usize,
    layout: Layout,
    lossy_codec: CodecId,
    threads_per_rank: Option<usize>,
    cache_lines: usize,
    cache_auto_disable_after: u64,
    prefetch: bool,
    partial_decode: bool,
    spill: Option<SpillConfig>,
    blocks: Vec<Option<CompressedBlock>>,
}

fn encode_hello(
    rank: usize,
    cfg: &SimConfig,
    layout: Layout,
    blocks: &[Option<CompressedBlock>],
) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, PROTOCOL_VERSION);
    put_u32(&mut buf, rank as u32);
    put_u32(&mut buf, layout.num_qubits);
    put_u32(&mut buf, layout.ranks_log2);
    put_u32(&mut buf, layout.block_log2);
    put_u8(&mut buf, cfg.lossy_codec as u8);
    match cfg.threads_per_rank {
        Some(t) => {
            put_u8(&mut buf, 1);
            put_u32(&mut buf, t as u32);
        }
        None => put_u8(&mut buf, 0),
    }
    put_u64(&mut buf, cfg.cache_lines as u64);
    put_u64(&mut buf, cfg.cache_auto_disable_after);
    put_u8(&mut buf, cfg.prefetch as u8);
    put_u8(&mut buf, cfg.partial_decode as u8);
    match &cfg.spill {
        Some(spill) => {
            put_u8(&mut buf, 1);
            put_u64(&mut buf, spill.resident_blocks as u64);
            put_u8(
                &mut buf,
                match spill.eviction {
                    crate::store::Eviction::Lru => EVICTION_LRU,
                    crate::store::Eviction::PlannedMin => EVICTION_PLANNED_MIN,
                },
            );
            put_u8(&mut buf, spill.write_behind as u8);
            put_u64(&mut buf, spill.shards as u64);
        }
        None => put_u8(&mut buf, 0),
    }
    put_u32(&mut buf, blocks.len() as u32);
    for block in blocks {
        match block {
            Some(b) => {
                put_u8(&mut buf, 1);
                put_block(&mut buf, b);
            }
            None => put_u8(&mut buf, 0),
        }
    }
    buf
}

fn decode_hello(body: &[u8]) -> Result<Hello, NetError> {
    let mut cur = Cursor::new(body);
    let version = cur.take_u32()?;
    if version != PROTOCOL_VERSION {
        return Err(NetError::Protocol(format!(
            "peer speaks protocol v{version}, this daemon speaks v{PROTOCOL_VERSION}"
        )));
    }
    let rank = cur.take_u32()? as usize;
    let layout = Layout::new(cur.take_u32()?, cur.take_u32()?, cur.take_u32()?);
    let lossy_codec = {
        let id = cur.take_u8()?;
        CodecId::from_u8(id).ok_or_else(|| NetError::Corrupt(format!("unknown codec id {id}")))?
    };
    let threads_per_rank = if cur.take_u8()? != 0 {
        Some(cur.take_u32()? as usize)
    } else {
        None
    };
    let cache_lines = cur.take_u64()? as usize;
    let cache_auto_disable_after = cur.take_u64()?;
    let prefetch = cur.take_u8()? != 0;
    let partial_decode = cur.take_u8()? != 0;
    let spill = if cur.take_u8()? != 0 {
        let resident_blocks = cur.take_u64()? as usize;
        let eviction = match cur.take_u8()? {
            EVICTION_LRU => crate::store::Eviction::Lru,
            EVICTION_PLANNED_MIN => crate::store::Eviction::PlannedMin,
            t => return Err(NetError::Corrupt(format!("unknown eviction tag {t}"))),
        };
        let write_behind = cur.take_u8()? != 0;
        let shards = cur.take_u64()? as usize;
        Some(SpillConfig {
            resident_blocks,
            dir: None, // the daemon chooses where its own segments live
            eviction,
            write_behind,
            shards,
        })
    } else {
        None
    };
    let n = cur.take_count(1)?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(if cur.take_u8()? != 0 {
            Some(take_block(&mut cur)?)
        } else {
            None
        });
    }
    cur.finish()?;
    Ok(Hello {
        rank,
        layout,
        lossy_codec,
        threads_per_rank,
        cache_lines,
        cache_auto_disable_after,
        prefetch,
        partial_decode,
        spill,
        blocks,
    })
}

fn encode_hello_ack(result: Result<u32, &str>) -> Vec<u8> {
    let mut buf = Vec::new();
    match result {
        Ok(rank) => {
            put_u8(&mut buf, 1);
            put_u32(&mut buf, PROTOCOL_VERSION);
            put_u32(&mut buf, rank);
        }
        Err(msg) => {
            put_u8(&mut buf, 0);
            put_str(&mut buf, msg);
        }
    }
    buf
}

// --- coordinator side: the remote worker stub ---------------------------

/// The coordinator's stand-in for a rank worker hosted by `qcsim-workerd`:
/// implements the same [`qcs_cluster::exec::Worker`] seam as the
/// in-process `RankWorker`, shipping each command over its connection and
/// bridging exchange links with Relay frames. Metrics deltas shipped with
/// every `Done` are absorbed into the coordinator's [`Metrics`], so the
/// report's communication and spill accounting is identical to a local
/// run.
pub(crate) struct RemoteWorkerClient {
    rank: usize,
    reader: TcpStream,
    writer: TcpStream,
    metrics: Metrics,
}

impl RemoteWorkerClient {
    /// Connect, handshake, and ship `blocks` as rank `rank`'s initial
    /// state.
    fn connect(
        remote: &RemoteConfig,
        cfg: &SimConfig,
        layout: Layout,
        rank: usize,
        blocks: &[Option<CompressedBlock>],
        metrics: Metrics,
    ) -> Result<Self, SimError> {
        let endpoint = &remote.endpoints[rank % remote.endpoints.len()];
        let stream = qcs_net::connect_supervised(endpoint, &remote.connect_policy())
            .map_err(|e| transport_err(rank, &format!("connect to {endpoint}"), e))?;
        let reader = stream
            .try_clone()
            .map_err(|e| transport_err(rank, "clone stream", e))?;
        let mut client = Self {
            rank,
            reader,
            writer: stream,
            metrics,
        };
        let hello = encode_hello(rank, cfg, layout, blocks);
        write_frame_to(&mut client.writer, K_HELLO, &hello)
            .map_err(|e| transport_err(rank, "send handshake", e))?;
        let (kind, body) = recv_frame(&mut client.reader)
            .map_err(|e| transport_err(rank, "read handshake ack", e))?;
        if kind != K_HELLO_ACK {
            return Err(transport_err(
                rank,
                "handshake",
                format!("unexpected frame kind {kind}"),
            ));
        }
        let mut cur = Cursor::new(&body);
        let ok = cur.take_u8().map_err(|e| transport_err(rank, "ack", e))?;
        if ok == 0 {
            let msg = cur
                .take_str()
                .map_err(|e| transport_err(rank, "ack", e))?
                .to_string();
            return Err(SimError::Transport(format!(
                "rank {rank}: daemon rejected handshake: {msg}"
            )));
        }
        Ok(client)
    }
}

impl Drop for RemoteWorkerClient {
    fn drop(&mut self) {
        // Best-effort graceful goodbye so the daemon tears the rank down
        // (and removes its spill segments) without logging an error.
        let _ = write_frame_to(&mut self.writer, K_SHUTDOWN, &[]);
    }
}

/// Drain the coordinator-side link (blocks the *peer* rank sends toward
/// this rank's daemon) into Relay frames; when the link closes — the peer
/// client got its `Done` and dropped its sender — tell the daemon's
/// inbound relay the stream is over.
fn forward_outbound(rx: DuplexRx<BlockMsg>, mut w: TcpStream) {
    while let Some((b, blk)) = rx.recv() {
        if write_frame_to(&mut w, K_RELAY, &encode_relay(b, &blk)).is_err() {
            return; // socket gone; the main read path owns the error
        }
    }
    let _ = write_frame_to(&mut w, K_EXCHANGE_EOF, &[]);
}

impl qcs_cluster::exec::Worker for RemoteWorkerClient {
    type Cmd = WorkerCmd;
    type Resp = Result<WorkerOut, SimError>;

    fn handle(&mut self, cmd: WorkerCmd) -> Result<WorkerOut, SimError> {
        let (body, link) = encode_cmd(cmd);
        if let Err(e) = write_frame_to(&mut self.writer, K_CMD, &body) {
            return Err(transport_err(self.rank, "send command", e));
        }
        // For an exchange: the forwarder drains the link half the peer
        // sends into, while this thread pumps inbound Relay frames into
        // the half the peer receives from.
        let mut bridge: Option<(DuplexTx<BlockMsg>, JoinHandle<()>)> = match link {
            Some(l) => {
                let (tx, rx) = l.split();
                let w = self
                    .writer
                    .try_clone()
                    .map_err(|e| transport_err(self.rank, "clone stream", e))?;
                Some((tx, std::thread::spawn(move || forward_outbound(rx, w))))
            }
            None => None,
        };
        let result = loop {
            match recv_frame(&mut self.reader) {
                Err(e) => break Err(transport_err(self.rank, "read response", e)),
                Ok((K_RELAY, body)) => match (&bridge, decode_relay(&body)) {
                    (Some((tx, _)), Ok(msg)) => {
                        // A false send means the peer client already
                        // failed; its own wave surfaces that error.
                        let _ = tx.send(msg);
                    }
                    (None, _) => {
                        break Err(transport_err(
                            self.rank,
                            "protocol",
                            "relay frame outside an exchange",
                        ))
                    }
                    (_, Err(e)) => break Err(transport_err(self.rank, "relay frame", e)),
                },
                Ok((K_DONE, body)) => {
                    break match decode_done(&body) {
                        Ok((delta, result)) => {
                            self.metrics.absorb(&delta);
                            result.map_err(|msg| {
                                SimError::Transport(format!("rank {} (remote): {msg}", self.rank))
                            })
                        }
                        Err(e) => Err(transport_err(self.rank, "done frame", e)),
                    }
                }
                Ok((kind, _)) => {
                    break Err(transport_err(
                        self.rank,
                        "protocol",
                        format!("unexpected frame kind {kind}"),
                    ))
                }
            }
        };
        // Unblock the peer (dropping the sender ends its forwarder's
        // drain) before joining our own forwarder.
        if let Some((tx, jh)) = bridge.take() {
            drop(tx);
            let _ = jh.join();
        }
        result
    }
}

/// Connect one [`RemoteWorkerClient`] per rank (rank `r` dials
/// `endpoints[r % endpoints.len()]`), shipping each rank's initial block
/// table during the handshake.
pub(crate) fn connect_cluster(
    remote: &RemoteConfig,
    cfg: &SimConfig,
    layout: Layout,
    per_rank_blocks: &[Vec<Option<CompressedBlock>>],
    metrics: Metrics,
) -> Result<Vec<RemoteWorkerClient>, SimError> {
    per_rank_blocks
        .iter()
        .enumerate()
        .map(|(rank, blocks)| {
            RemoteWorkerClient::connect(remote, cfg, layout, rank, blocks, metrics.clone())
        })
        .collect()
}

// --- daemon side ---------------------------------------------------------

/// Behavior knobs for [`serve`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Stop accepting after this many connections and return once their
    /// handlers finish. `None` serves forever (the daemon binary's
    /// default).
    pub max_conns: Option<usize>,
    /// Fault injection for tests: a connection handler drops its
    /// connection cold (no `Done`, no goodbye) instead of executing its
    /// N-th command (0-based). The worker is dropped on the way out, so
    /// spill segments are still cleaned up — exactly what a crashing rank
    /// process would leave behind.
    pub fail_after_cmds: Option<usize>,
    /// Where spilling ranks keep their segment directories. `None` uses
    /// the system temp directory.
    pub spill_dir: Option<PathBuf>,
}

/// Serve rank-worker connections on `listener`: one handler thread per
/// connection, each hosting one `RankWorker` built from the client's
/// handshake. Returns after [`ServeOptions::max_conns`] handlers have
/// finished (never, when unset).
pub fn serve(listener: TcpListener, opts: ServeOptions) -> std::io::Result<()> {
    let mut handlers = Vec::new();
    let mut accepted = 0usize;
    while opts.max_conns.is_none_or(|max| accepted < max) {
        let (stream, peer) = listener.accept()?;
        accepted += 1;
        let opts = opts.clone();
        handlers.push(std::thread::spawn(move || {
            if let Err(e) = handle_conn(stream, &opts) {
                eprintln!("qcsim-workerd: connection from {peer} failed: {e}");
            }
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

/// Bind an ephemeral loopback port and [`serve`] it on a background
/// thread. Returns the bound address (to hand to
/// [`crate::config::SimConfig::with_remote`]) and the server thread's
/// handle, which finishes once [`ServeOptions::max_conns`] connections
/// have been served — so tests and the repro harness can join it to know
/// every worker is torn down.
pub fn spawn_loopback(
    conns: usize,
    mut opts: ServeOptions,
) -> std::io::Result<(String, JoinHandle<()>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    opts.max_conns = Some(conns);
    let handle = std::thread::Builder::new()
        .name("qcsim-workerd".into())
        .spawn(move || {
            if let Err(e) = serve(listener, opts) {
                eprintln!("qcsim-workerd: serve failed: {e}");
            }
        })?;
    Ok((addr, handle))
}

/// Build one rank's worker from its handshake. The daemon keeps its own
/// metrics, cache, and (for a spilling config) segment directory — state
/// is per-connection, exactly as per-process state would be under MPI.
fn build_worker(
    hello: &Hello,
    opts: &ServeOptions,
    metrics: Metrics,
) -> Result<RankWorker, String> {
    if hello.blocks.len() != hello.layout.blocks_per_rank() {
        return Err(format!(
            "handshake shipped {} blocks, layout needs {}",
            hello.blocks.len(),
            hello.layout.blocks_per_rank()
        ));
    }
    if hello.rank >= hello.layout.ranks() {
        return Err(format!(
            "rank {} out of range for a {}-rank layout",
            hello.rank,
            hello.layout.ranks()
        ));
    }
    let codec = Arc::new(BlockCodec::new(hello.lossy_codec));
    codec.prewarm(
        hello.layout.block_amps() * 2,
        (4 * rayon::current_num_threads() + 4).min(32),
    );
    let cache = Arc::new(BlockCache::new(
        hello.cache_lines,
        hello.cache_auto_disable_after,
    ));
    let store: Box<dyn BlockStore> = match &hello.spill {
        Some(spill) => {
            let dir = opts.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            let guard = SegmentDirGuard::create(&dir).map_err(|e| format!("spill dir: {e}"))?;
            Box::new(
                SpillStore::create_with(
                    guard.path(),
                    &format!("r{}", hello.rank),
                    spill.resident_blocks,
                    metrics.clone(),
                    hello.blocks.clone(),
                    SpillOptions {
                        prefetch: hello.prefetch,
                        dir_guard: Some(Arc::clone(&guard)),
                        eviction: spill.eviction,
                        write_behind: spill.write_behind,
                        shards: spill.shards,
                    },
                )
                .map_err(|e| format!("spill store: {e}"))?,
            )
        }
        None => Box::new(MemStore::new(hello.blocks.clone())),
    };
    Ok(RankWorker::new(
        hello.rank,
        hello.layout,
        codec,
        cache,
        metrics,
        store,
        hello.partial_decode,
    ))
}

/// Daemon side of the exchange bridge: pump the worker's outbound blocks
/// onto the socket as Relay frames. Ends when the worker drops its link
/// end (its `handle` returned).
fn relay_worker_outbound(rx: DuplexRx<BlockMsg>, mut w: TcpStream) {
    while let Some((b, blk)) = rx.recv() {
        if write_frame_to(&mut w, K_RELAY, &encode_relay(b, &blk)).is_err() {
            return;
        }
    }
}

/// Daemon side of the exchange bridge: pump inbound Relay frames into the
/// worker's link. Ends on the coordinator's `ExchangeEof`, or on any
/// read/protocol error — either way the sender drops, so a worker waiting
/// on a vanished peer sees a closed link (a typed exchange error), not a
/// hang.
fn relay_socket_inbound(tx: DuplexTx<BlockMsg>, mut r: TcpStream) {
    loop {
        match recv_frame(&mut r) {
            Ok((K_RELAY, body)) => match decode_relay(&body) {
                Ok(msg) => {
                    if !tx.send(msg) {
                        return;
                    }
                }
                Err(_) => return,
            },
            Ok((K_EXCHANGE_EOF, _)) => return,
            _ => return,
        }
    }
}

/// Host one connection: handshake, then the command loop. Returning —
/// normally or not — drops the rank's worker, and with it any spill
/// segment directory it owned.
fn handle_conn(stream: TcpStream, opts: &ServeOptions) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;

    let (kind, body) = recv_frame(&mut reader)?;
    if kind != K_HELLO {
        return Err(NetError::Protocol(format!(
            "expected Hello, got frame kind {kind}"
        )));
    }
    let metrics = Metrics::new();
    let (mut worker, pool) = match decode_hello(&body)
        .map_err(|e| e.to_string())
        .and_then(|h| {
            let worker = build_worker(&h, opts, metrics.clone())?;
            let pool = h
                .threads_per_rank
                .map(|t| {
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(t.max(1))
                        .build()
                        .map_err(|e| format!("rayon pool: {e}"))
                })
                .transpose()?;
            Ok((h.rank, worker, pool))
        }) {
        Ok((rank, worker, pool)) => {
            write_frame_to(&mut writer, K_HELLO_ACK, &encode_hello_ack(Ok(rank as u32)))?;
            (worker, pool)
        }
        Err(msg) => {
            write_frame_to(&mut writer, K_HELLO_ACK, &encode_hello_ack(Err(&msg)))?;
            return Err(NetError::Protocol(msg));
        }
    };

    let mut last = TimeBreakdown::default();
    let mut cmds_handled = 0usize;
    loop {
        let (kind, body) = match recv_frame(&mut reader) {
            Ok(frame) => frame,
            // A vanished coordinator is a normal way for a rank to end
            // (its process died); treat EOF as shutdown.
            Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match kind {
            K_SHUTDOWN => return Ok(()),
            K_CMD => {
                if opts.fail_after_cmds == Some(cmds_handled) {
                    // Fault injection: die where a crashing rank process
                    // would — mid-protocol, without a goodbye.
                    return Ok(());
                }
                cmds_handled += 1;
                let DecodedCmd { cmd, bridge } = decode_cmd(&body)?;
                let relays = match bridge {
                    Some(b) => {
                        let (btx, brx) = b.split();
                        let w = writer.try_clone()?;
                        let r = reader.try_clone()?;
                        Some((
                            std::thread::spawn(move || relay_worker_outbound(brx, w)),
                            std::thread::spawn(move || relay_socket_inbound(btx, r)),
                        ))
                    }
                    None => None,
                };
                let result = match &pool {
                    Some(p) => p.install(|| worker.handle(cmd)),
                    None => worker.handle(cmd),
                };
                let now = metrics.breakdown();
                let delta = now.delta(&last);
                last = now;
                if let Some((outbound, inbound)) = relays {
                    // Every outbound Relay frame precedes Done on the
                    // wire; Done goes out BEFORE joining the inbound
                    // relay, because the peer's ExchangeEof can only
                    // arrive after the peer rank observed its own Done.
                    let _ = outbound.join();
                    write_frame_to(&mut writer, K_DONE, &encode_done(&result, &delta))?;
                    let _ = inbound.join();
                } else {
                    write_frame_to(&mut writer, K_DONE, &encode_done(&result, &delta))?;
                }
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected frame kind {other} between commands"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_cmd_round_trips() {
        let cmd = WorkerCmd::Gate(GateCmd {
            signature: 0xDEAD_BEEF,
            gate: Gate1::t(),
            route: Route::InterBlock { block_stride: 4 },
            offset_cmask: 0b101,
            block_cmask: 0b10,
            rank_cmask: 1,
            bound: ErrorBound::PointwiseRelative(1e-3),
            lookahead: Some(Arc::new(vec![3, 1, 4])),
        });
        let (body, link) = encode_cmd(cmd);
        assert!(link.is_none());
        let decoded = decode_cmd(&body).unwrap();
        assert!(decoded.bridge.is_none());
        match decoded.cmd {
            WorkerCmd::Gate(g) => {
                assert_eq!(g.signature, 0xDEAD_BEEF);
                assert_eq!(g.route, Route::InterBlock { block_stride: 4 });
                assert_eq!(g.offset_cmask, 0b101);
                assert_eq!(g.block_cmask, 0b10);
                assert_eq!(g.rank_cmask, 1);
                assert_eq!(g.bound, ErrorBound::PointwiseRelative(1e-3));
                assert_eq!(g.lookahead.as_deref(), Some(&vec![3, 1, 4]));
                assert_eq!(g.gate.m[1][1].re, Gate1::t().m[1][1].re);
            }
            _ => panic!("wrong command decoded"),
        }
    }

    #[test]
    fn exchange_cmd_builds_a_daemon_bridge() {
        let (lead, _follow) = duplex::<BlockMsg>();
        let cmd = WorkerCmd::Exchange(ExchangeCmd {
            signature: 7,
            gate: Gate1::h(),
            offset_cmask: 0,
            block_cmask: 0,
            bound: ErrorBound::Lossless,
            role: ExchangeRole::Lead(lead),
            lookahead: None,
        });
        let (body, link) = encode_cmd(cmd);
        assert!(link.is_some(), "the coordinator keeps the link");
        let decoded = decode_cmd(&body).unwrap();
        let bridge = decoded.bridge.expect("daemon side builds a local bridge");
        match decoded.cmd {
            WorkerCmd::Exchange(x) => match x.role {
                ExchangeRole::Lead(worker_end) => {
                    // The two local ends are wired to each other.
                    assert!(worker_end.send((0, zero_block())));
                    let (b, _) = bridge.recv().unwrap();
                    assert_eq!(b, 0);
                }
                _ => panic!("wrong role decoded"),
            },
            _ => panic!("wrong command decoded"),
        }
    }

    #[test]
    fn done_round_trips_results_and_deltas() {
        let delta = TimeBreakdown {
            comm_bytes: 1234,
            exchanges: 5,
            communication: Duration::from_micros(250),
            ..TimeBreakdown::default()
        };
        let ok: Result<WorkerOut, SimError> = Ok(WorkerOut::Wave(WaveOut {
            lossy: true,
            comm_bytes: 99,
            compressed_bytes: 1000,
            resident_bytes: 800,
            hot_bytes: 700,
        }));
        let (d, r) = decode_done(&encode_done(&ok, &delta)).unwrap();
        assert_eq!(d.comm_bytes, 1234);
        assert_eq!(d.communication, Duration::from_micros(250));
        match r.unwrap() {
            WorkerOut::Wave(w) => {
                assert!(w.lossy);
                assert_eq!(w.comm_bytes, 99);
                assert_eq!(w.hot_bytes, 700);
            }
            _ => panic!("wrong response decoded"),
        }
        let err: Result<WorkerOut, SimError> = Err(SimError::Spill("disk full".into()));
        let (_, r) = decode_done(&encode_done(&err, &delta)).unwrap();
        assert_eq!(r.unwrap_err(), "spill error: disk full");
    }

    #[test]
    fn hello_round_trips_config_and_blocks() {
        let cfg = SimConfig::default()
            .with_block_log2(3)
            .with_ranks_log2(1)
            .with_threads_per_rank(2)
            .with_spill(2)
            .with_write_behind(true)
            .with_spill_shards(3)
            .with_partial_decode(false);
        let layout = Layout::new(6, 1, 3);
        let blocks = vec![Some(zero_block()), None, Some(zero_block()), None];
        let body = encode_hello(1, &cfg, layout, &blocks);
        let hello = decode_hello(&body).unwrap();
        assert_eq!(hello.rank, 1);
        assert_eq!(hello.layout, layout);
        assert_eq!(hello.threads_per_rank, Some(2));
        assert_eq!(hello.cache_lines, 64);
        assert!(hello.prefetch);
        assert!(!hello.partial_decode, "partial-decode flag round-trips");
        let spill = hello.spill.expect("spill config shipped");
        assert_eq!(spill.resident_blocks, 2);
        assert!(spill.write_behind);
        assert_eq!(spill.shards, 3);
        assert!(spill.dir.is_none(), "daemon picks its own directory");
        assert_eq!(hello.blocks.len(), 4);
        assert!(hello.blocks[0].is_some() && hello.blocks[1].is_none());
    }

    #[test]
    fn version_mismatch_is_a_protocol_error() {
        let cfg = SimConfig::default().with_block_log2(3);
        let layout = Layout::new(4, 0, 3);
        let mut body = encode_hello(0, &cfg, layout, &[]);
        body[0] = PROTOCOL_VERSION as u8 + 1;
        assert!(matches!(decode_hello(&body), Err(NetError::Protocol(_))));
    }

    fn zero_block() -> CompressedBlock {
        let codec = BlockCodec::new(CodecId::SolutionC);
        codec.compress(&[0.0; 16], ErrorBound::Lossless).unwrap()
    }
}
