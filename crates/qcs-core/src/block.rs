//! Compressed amplitude blocks (paper §3.1: "Each block is stored in
//! compressed format on the memory").

use qcs_compress::{Codec, CodecError, CodecId, ErrorBound, PartialCodec, QzstdCodec};
use std::sync::Arc;

/// One compressed block of `block_amps` complex amplitudes
/// (`2 * block_amps` doubles, interleaved re/im).
#[derive(Debug, Clone)]
pub struct CompressedBlock {
    /// Codec that produced `bytes`.
    pub codec: CodecId,
    /// Error bound `bytes` was compressed under. Metadata only (the codec
    /// stream is self-contained), but it makes a block self-describing when
    /// written to a persistent tier as a frame.
    pub bound: ErrorBound,
    /// Compressed payload, shared with the block cache.
    pub bytes: Arc<[u8]>,
}

impl CompressedBlock {
    /// Compressed size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload is empty (never for valid blocks).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// FNV-1a hash of the payload, used as the cache-line tag (the same
    /// hash the frame format uses as its checksum).
    pub fn content_hash(&self) -> u64 {
        qcs_compress::frame::fnv1a(&self.bytes)
    }
}

/// Compressor front-end that picks lossless vs lossy per the active ladder
/// level and stamps blocks with their codec id.
///
/// Codec instances are built once and shared across worker threads, which
/// keeps the per-block hot path allocation-free apart from output buffers.
pub struct BlockCodec {
    lossy_id: CodecId,
    lossy: Box<dyn Codec>,
    lossless: QzstdCodec,
}

impl std::fmt::Debug for BlockCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCodec")
            .field("lossy_id", &self.lossy_id)
            .finish()
    }
}

impl BlockCodec {
    /// Codec front-end using `lossy_id` for lossy levels.
    pub fn new(lossy_id: CodecId) -> Self {
        Self {
            lossy_id,
            lossy: lossy_id.build(),
            lossless: QzstdCodec::default(),
        }
    }

    /// The configured lossy codec id.
    pub fn lossy_id(&self) -> CodecId {
        self.lossy_id
    }

    /// Compress `data` under `bound`.
    ///
    /// `ErrorBound::Lossless` uses the qzstd codec (the paper's Zstd leg);
    /// lossy bounds use the configured lossy codec (Solution C by default).
    pub fn compress(&self, data: &[f64], bound: ErrorBound) -> Result<CompressedBlock, CodecError> {
        let (id, bytes) = if bound.is_lossy() {
            (self.lossy_id, self.lossy.compress(data, bound)?)
        } else {
            (CodecId::Qzstd, self.lossless.compress(data, bound)?)
        };
        Ok(CompressedBlock {
            codec: id,
            bound,
            bytes: bytes.into(),
        })
    }

    /// Segment-addressable view of the codec that produced `block`, when
    /// that codec supports partial decode/encode. `None` for lossless
    /// (qzstd) blocks and for whole-stream lossy codecs.
    pub fn partial_for(&self, block: &CompressedBlock) -> Option<&dyn PartialCodec> {
        (block.codec == self.lossy_id)
            .then(|| self.lossy.as_partial())
            .flatten()
            .filter(|p| p.supports_partial())
    }

    /// The lossy codec's partial capability independent of any particular
    /// block — used to pre-qualify a wave before blocks are fetched.
    pub fn partial_codec(&self) -> Option<&dyn PartialCodec> {
        self.lossy.as_partial().filter(|p| p.supports_partial())
    }

    /// Decompress into `out` (cleared first).
    pub fn decompress(
        &self,
        block: &CompressedBlock,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let data = if block.codec == self.lossy_id {
            self.lossy.decompress(&block.bytes)?
        } else {
            block.codec.build().decompress(&block.bytes)?
        };
        out.clear();
        out.extend_from_slice(&data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amps(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.21).sin() * 1e-3).collect()
    }

    #[test]
    fn lossless_level_round_trips_exactly() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let data = amps(2048);
        let blk = bc.compress(&data, ErrorBound::Lossless).unwrap();
        assert_eq!(blk.codec, CodecId::Qzstd);
        let mut out = Vec::new();
        bc.decompress(&blk, &mut out).unwrap();
        assert_eq!(out.len(), data.len());
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lossy_level_uses_configured_codec() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let data = amps(2048);
        let blk = bc
            .compress(&data, ErrorBound::PointwiseRelative(1e-3))
            .unwrap();
        assert_eq!(blk.codec, CodecId::SolutionC);
        let mut out = Vec::new();
        bc.decompress(&blk, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-3 * a.abs());
        }
    }

    #[test]
    fn content_hash_distinguishes_blocks() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let b1 = bc.compress(&amps(512), ErrorBound::Lossless).unwrap();
        let mut other = amps(512);
        other[100] = 0.5;
        let b2 = bc.compress(&other, ErrorBound::Lossless).unwrap();
        assert_ne!(b1.content_hash(), b2.content_hash());
        assert_eq!(b1.content_hash(), b1.clone().content_hash());
    }

    #[test]
    fn zero_block_is_tiny() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let data = vec![0.0f64; 1 << 14];
        let blk = bc.compress(&data, ErrorBound::Lossless).unwrap();
        assert!(blk.len() < 32, "all-zero block: {} bytes", blk.len());
    }
}
