//! Compressed amplitude blocks (paper §3.1: "Each block is stored in
//! compressed format on the memory").
//!
//! This module is also the allocation seam of the simulation hot path:
//! [`BlockCodec`] owns a striped [`BufferPool`] of recycled amplitude and
//! compression buffers plus a set of [`CodecCounters`] that make the
//! "allocation-free steady state" claim machine-checkable. Every pooled
//! checkout and every capacity growth observed at this seam is counted, so
//! a run whose report shows `codec_allocs == 0` provably never touched the
//! heap for per-block codec work after warm-up.

use parking_lot::Mutex;
use qcs_compress::{Codec, CodecError, CodecId, ErrorBound, PartialCodec, QzstdCodec};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One compressed block of `block_amps` complex amplitudes
/// (`2 * block_amps` doubles, interleaved re/im).
#[derive(Debug, Clone)]
pub struct CompressedBlock {
    /// Codec that produced `bytes`.
    pub codec: CodecId,
    /// Error bound `bytes` was compressed under. Metadata only (the codec
    /// stream is self-contained), but it makes a block self-describing when
    /// written to a persistent tier as a frame.
    pub bound: ErrorBound,
    /// Compressed payload, shared with the block cache.
    pub bytes: Arc<[u8]>,
}

impl CompressedBlock {
    /// Compressed size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload is empty (never for valid blocks).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// FNV-1a hash of the payload, used as the cache-line tag (the same
    /// hash the frame format uses as its checksum).
    pub fn content_hash(&self) -> u64 {
        qcs_compress::frame::fnv1a(&self.bytes)
    }
}

/// A drained snapshot of the codec-side allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecCounterSnapshot {
    /// Heap allocations observed at the codec seam: pooled-buffer misses
    /// plus capacity growth of buffers passed through the seam.
    pub codec_allocs: u64,
    /// Bytes of capacity growth observed at the codec seam.
    pub codec_bytes_alloc: u64,
    /// Buffer checkouts / codec calls that reused existing capacity.
    pub scratch_reuse_hits: u64,
}

impl CodecCounterSnapshot {
    /// Merge another snapshot into this one.
    pub fn absorb(&mut self, other: &CodecCounterSnapshot) {
        self.codec_allocs += other.codec_allocs;
        self.codec_bytes_alloc += other.codec_bytes_alloc;
        self.scratch_reuse_hits += other.scratch_reuse_hits;
    }
}

/// Relaxed atomic counters tracking heap traffic at the codec seam.
#[derive(Debug, Default)]
pub struct CodecCounters {
    codec_allocs: AtomicU64,
    codec_bytes_alloc: AtomicU64,
    scratch_reuse_hits: AtomicU64,
}

impl CodecCounters {
    fn note_alloc(&self, bytes: u64) {
        self.codec_allocs.fetch_add(1, Ordering::Relaxed);
        self.codec_bytes_alloc.fetch_add(bytes, Ordering::Relaxed);
    }

    fn note_reuse(&self) {
        self.scratch_reuse_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Read the counters without resetting them.
    pub fn peek(&self) -> CodecCounterSnapshot {
        CodecCounterSnapshot {
            codec_allocs: self.codec_allocs.load(Ordering::Relaxed),
            codec_bytes_alloc: self.codec_bytes_alloc.load(Ordering::Relaxed),
            scratch_reuse_hits: self.scratch_reuse_hits.load(Ordering::Relaxed),
        }
    }

    /// Drain the counters to zero, returning what accumulated since the
    /// previous drain.
    pub fn take(&self) -> CodecCounterSnapshot {
        CodecCounterSnapshot {
            codec_allocs: self.codec_allocs.swap(0, Ordering::Relaxed),
            codec_bytes_alloc: self.codec_bytes_alloc.swap(0, Ordering::Relaxed),
            scratch_reuse_hits: self.scratch_reuse_hits.swap(0, Ordering::Relaxed),
        }
    }
}

/// Stripes in the buffer pool; bounds lock contention under rayon without
/// holding more idle buffers than a wave can use at once.
const POOL_STRIPES: usize = 8;
/// Idle buffers kept per stripe per type; checkouts beyond the bound fall
/// back to (counted) fresh allocations and returns beyond it are dropped.
const MAX_POOLED_PER_STRIPE: usize = 4;

#[derive(Default)]
struct PoolStripe {
    bytes: Mutex<Vec<Vec<u8>>>,
    f64s: Mutex<Vec<Vec<f64>>>,
}

/// A small striped pool of recycled `Vec<u8>` / `Vec<f64>` buffers.
///
/// Checkouts and returns are O(1) under a striped [`parking_lot::Mutex`];
/// the pool is bounded, so it can never hold more than
/// `POOL_STRIPES * MAX_POOLED_PER_STRIPE` idle buffers of each type.
#[derive(Default)]
pub struct BufferPool {
    stripes: [PoolStripe; POOL_STRIPES],
    next: AtomicUsize,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool").finish()
    }
}

impl BufferPool {
    fn stripe(&self) -> &PoolStripe {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        &self.stripes[i % POOL_STRIPES]
    }

    fn take_bytes(&self) -> Option<Vec<u8>> {
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for off in 0..POOL_STRIPES {
            if let Some(buf) = self.stripes[(start + off) % POOL_STRIPES]
                .bytes
                .lock()
                .pop()
            {
                return Some(buf);
            }
        }
        None
    }

    fn put_bytes(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut stack = self.stripe().bytes.lock();
        if stack.len() < MAX_POOLED_PER_STRIPE {
            stack.push(buf);
        }
    }

    fn take_f64s(&self) -> Option<Vec<f64>> {
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for off in 0..POOL_STRIPES {
            if let Some(buf) = self.stripes[(start + off) % POOL_STRIPES].f64s.lock().pop() {
                return Some(buf);
            }
        }
        None
    }

    fn put_f64s(&self, mut buf: Vec<f64>) {
        buf.clear();
        let mut stack = self.stripe().f64s.lock();
        if stack.len() < MAX_POOLED_PER_STRIPE {
            stack.push(buf);
        }
    }
}

/// Compressor front-end that picks lossless vs lossy per the active ladder
/// level and stamps blocks with their codec id.
///
/// Codec instances are built once and shared across worker threads, which
/// keeps the per-block hot path allocation-free apart from output buffers —
/// and those come from the built-in [`BufferPool`], so the steady state
/// allocates nothing at all (pinned by [`CodecCounters`]).
pub struct BlockCodec {
    lossy_id: CodecId,
    lossy: Box<dyn Codec>,
    lossless: QzstdCodec,
    pool: BufferPool,
    counters: CodecCounters,
}

impl std::fmt::Debug for BlockCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCodec")
            .field("lossy_id", &self.lossy_id)
            .finish()
    }
}

impl BlockCodec {
    /// Codec front-end using `lossy_id` for lossy levels.
    pub fn new(lossy_id: CodecId) -> Self {
        Self {
            lossy_id,
            lossy: lossy_id.build(),
            lossless: QzstdCodec::default(),
            pool: BufferPool::default(),
            counters: CodecCounters::default(),
        }
    }

    /// The configured lossy codec id.
    pub fn lossy_id(&self) -> CodecId {
        self.lossy_id
    }

    /// Pre-populate the pool with `n` amplitude buffers sized for
    /// `block_f64s` doubles and `n` byte buffers sized for the worst
    /// realistic compressed output, so steady-state waves start warm.
    /// Prewarm allocations are deliberately *not* counted.
    pub fn prewarm(&self, block_f64s: usize, n: usize) {
        for _ in 0..n {
            self.pool.put_f64s(Vec::with_capacity(block_f64s));
            // Compressed output can exceed the raw size by headers plus
            // per-segment indexes; 2x raw + change covers every codec.
            self.pool
                .put_bytes(Vec::with_capacity(2 * 8 * block_f64s + 1024));
        }
    }

    /// Counters tracking heap traffic at this seam.
    pub fn counters(&self) -> &CodecCounters {
        &self.counters
    }

    /// Drain the seam counters (see [`CodecCounters::take`]).
    pub fn take_counters(&self) -> CodecCounterSnapshot {
        self.counters.take()
    }

    /// Check an amplitude scratch buffer out of the pool (counted).
    pub fn take_amp_buf(&self) -> Vec<f64> {
        match self.pool.take_f64s() {
            Some(buf) => {
                self.counters.note_reuse();
                buf
            }
            None => {
                self.counters.note_alloc(0);
                Vec::new()
            }
        }
    }

    /// Return an amplitude scratch buffer to the pool.
    pub fn put_amp_buf(&self, buf: Vec<f64>) {
        self.pool.put_f64s(buf);
    }

    /// Check a byte scratch buffer out of the pool (counted).
    pub fn take_byte_buf(&self) -> Vec<u8> {
        match self.pool.take_bytes() {
            Some(buf) => {
                self.counters.note_reuse();
                buf
            }
            None => {
                self.counters.note_alloc(0);
                Vec::new()
            }
        }
    }

    /// Return a byte scratch buffer to the pool.
    pub fn put_byte_buf(&self, buf: Vec<u8>) {
        self.pool.put_bytes(buf);
    }

    /// The resident (pre-built, shared) codec instance for `id`, if this
    /// front-end holds one. `None` for foreign ids — blocks produced by a
    /// differently-configured engine.
    fn resident_codec(&self, id: CodecId) -> Option<&dyn Codec> {
        if id == self.lossy_id {
            Some(&*self.lossy)
        } else if id == CodecId::Qzstd {
            Some(&self.lossless)
        } else {
            None
        }
    }

    /// Compress `data` under `bound`.
    ///
    /// `ErrorBound::Lossless` uses the qzstd codec (the paper's Zstd leg);
    /// lossy bounds use the configured lossy codec (Solution C by default).
    pub fn compress(&self, data: &[f64], bound: ErrorBound) -> Result<CompressedBlock, CodecError> {
        let (id, bytes) = if bound.is_lossy() {
            (self.lossy_id, self.lossy.compress(data, bound)?)
        } else {
            (CodecId::Qzstd, self.lossless.compress(data, bound)?)
        };
        // Every crate codec returns exact-capacity output, so this
        // conversion moves the allocation instead of copying through a
        // reallocation.
        debug_assert_eq!(bytes.capacity(), bytes.len());
        Ok(CompressedBlock {
            codec: id,
            bound,
            bytes: bytes.into(),
        })
    }

    /// [`BlockCodec::compress`] through a pooled output buffer: the codec
    /// writes into recycled scratch and only the final shared payload copy
    /// (`Arc<[u8]>`, storage rather than scratch) touches the allocator.
    /// Pool misses and scratch growth are counted.
    pub fn compress_pooled(
        &self,
        data: &[f64],
        bound: ErrorBound,
    ) -> Result<CompressedBlock, CodecError> {
        let mut buf = self.take_byte_buf();
        let cap_before = buf.capacity();
        let (id, res) = if bound.is_lossy() {
            (
                self.lossy_id,
                self.lossy.compress_into(data, bound, &mut buf),
            )
        } else {
            (
                CodecId::Qzstd,
                self.lossless.compress_into(data, bound, &mut buf),
            )
        };
        self.note_growth(cap_before, buf.capacity(), 1);
        let block = res.map(|()| CompressedBlock {
            codec: id,
            bound,
            bytes: Arc::from(&buf[..]),
        });
        self.put_byte_buf(buf);
        block
    }

    /// Segment-addressable view of the codec that produced `block`, when
    /// that codec supports partial decode/encode. `None` for lossless
    /// (qzstd) blocks and for whole-stream lossy codecs.
    pub fn partial_for(&self, block: &CompressedBlock) -> Option<&dyn PartialCodec> {
        (block.codec == self.lossy_id)
            .then(|| self.lossy.as_partial())
            .flatten()
            .filter(|p| p.supports_partial())
    }

    /// The lossy codec's partial capability independent of any particular
    /// block — used to pre-qualify a wave before blocks are fetched.
    pub fn partial_codec(&self) -> Option<&dyn PartialCodec> {
        self.lossy.as_partial().filter(|p| p.supports_partial())
    }

    /// Decompress into `out` (cleared first).
    ///
    /// Blocks from the resident codecs decode through the shared instances
    /// (no per-call codec construction); only foreign codec ids fall back
    /// to building a codec. Capacity growth of `out` is counted; a decode
    /// that fits the existing capacity counts as a scratch reuse.
    pub fn decompress(
        &self,
        block: &CompressedBlock,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let cap_before = out.capacity();
        let res = match self.resident_codec(block.codec) {
            Some(codec) => codec.decompress_into(&block.bytes, out),
            None => block.codec.build().decompress_into(&block.bytes, out),
        };
        self.note_growth(cap_before, out.capacity(), 8);
        res
    }

    /// Count a capacity transition observed at the seam: growth is an
    /// allocation of the grown bytes, staying put is a reuse hit.
    pub(crate) fn note_growth(&self, cap_before: usize, cap_after: usize, elem_size: u64) {
        if cap_after > cap_before {
            self.counters
                .note_alloc((cap_after - cap_before) as u64 * elem_size);
        } else {
            self.counters.note_reuse();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amps(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.21).sin() * 1e-3).collect()
    }

    #[test]
    fn lossless_level_round_trips_exactly() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let data = amps(2048);
        let blk = bc.compress(&data, ErrorBound::Lossless).unwrap();
        assert_eq!(blk.codec, CodecId::Qzstd);
        let mut out = Vec::new();
        bc.decompress(&blk, &mut out).unwrap();
        assert_eq!(out.len(), data.len());
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lossy_level_uses_configured_codec() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let data = amps(2048);
        let blk = bc
            .compress(&data, ErrorBound::PointwiseRelative(1e-3))
            .unwrap();
        assert_eq!(blk.codec, CodecId::SolutionC);
        let mut out = Vec::new();
        bc.decompress(&blk, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-3 * a.abs());
        }
    }

    #[test]
    fn content_hash_distinguishes_blocks() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let b1 = bc.compress(&amps(512), ErrorBound::Lossless).unwrap();
        let mut other = amps(512);
        other[100] = 0.5;
        let b2 = bc.compress(&other, ErrorBound::Lossless).unwrap();
        assert_ne!(b1.content_hash(), b2.content_hash());
        assert_eq!(b1.content_hash(), b1.clone().content_hash());
    }

    #[test]
    fn zero_block_is_tiny() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let data = vec![0.0f64; 1 << 14];
        let blk = bc.compress(&data, ErrorBound::Lossless).unwrap();
        assert!(blk.len() < 32, "all-zero block: {} bytes", blk.len());
    }

    #[test]
    fn lossless_blocks_decode_through_the_shared_instance() {
        // The paper's hot loop decodes lossless blocks constantly while the
        // state is sparse; each decode must reuse `self.lossless` rather
        // than building a boxed codec per call.
        let bc = BlockCodec::new(CodecId::SolutionC);
        let resident = bc
            .resident_codec(CodecId::Qzstd)
            .expect("qzstd is always resident");
        assert!(std::ptr::eq(
            resident as *const dyn Codec as *const u8,
            &bc.lossless as *const QzstdCodec as *const u8,
        ));
        let lossy = bc
            .resident_codec(CodecId::SolutionC)
            .expect("configured lossy codec is resident");
        assert!(std::ptr::eq(
            lossy as *const dyn Codec as *const u8,
            &*bc.lossy as *const dyn Codec as *const u8,
        ));
        // A foreign id (not configured on this front-end) has no resident
        // instance and takes the build() fallback.
        assert!(bc.resident_codec(CodecId::SolutionD).is_none());

        // And a qzstd block round-trips through that shared instance.
        let data = amps(1024);
        let blk = bc.compress(&data, ErrorBound::Lossless).unwrap();
        let mut out = Vec::new();
        bc.decompress(&blk, &mut out).unwrap();
        assert_eq!(out.len(), data.len());
    }

    #[test]
    fn pooled_compress_matches_allocating_compress() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let data = amps(4096);
        for bound in [ErrorBound::Lossless, ErrorBound::PointwiseRelative(1e-4)] {
            let plain = bc.compress(&data, bound).unwrap();
            let pooled = bc.compress_pooled(&data, bound).unwrap();
            assert_eq!(plain.codec, pooled.codec);
            assert_eq!(&plain.bytes[..], &pooled.bytes[..]);
        }
    }

    #[test]
    fn counters_reach_zero_allocs_once_warm() {
        let bc = BlockCodec::new(CodecId::SolutionC);
        let data = amps(4096);
        bc.prewarm(data.len(), 2);
        // Warm-up pass: scratch grows to the working size.
        let blk = bc
            .compress_pooled(&data, ErrorBound::PointwiseRelative(1e-4))
            .unwrap();
        let mut out = bc.take_amp_buf();
        bc.decompress(&blk, &mut out).unwrap();
        bc.put_amp_buf(out);
        bc.take_counters();
        // Steady state: every round must be allocation-free at the seam.
        for _ in 0..3 {
            let blk = bc
                .compress_pooled(&data, ErrorBound::PointwiseRelative(1e-4))
                .unwrap();
            let mut out = bc.take_amp_buf();
            bc.decompress(&blk, &mut out).unwrap();
            bc.put_amp_buf(out);
        }
        let snap = bc.take_counters();
        assert_eq!(snap.codec_allocs, 0, "steady state allocated: {snap:?}");
        assert_eq!(snap.codec_bytes_alloc, 0);
        assert!(
            snap.scratch_reuse_hits >= 9,
            "expected reuse hits: {snap:?}"
        );
    }
}
