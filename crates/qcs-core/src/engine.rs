//! The compressed-block full-state simulator (paper §3).
//!
//! The state vector is divided over ranks and, within each rank, into
//! blocks stored compressed in memory (Fig. 2). Since the rank-worker
//! split, this module is the *facade and orchestrator glue*: the actual
//! per-rank state — compressed blocks, scratch buffers, the §3.2 unit
//! pipeline — lives in the private `worker` module's `RankWorker`, and
//! [`CompressedSimulator`] routes every operation to its workers:
//!
//! - `ranks_log2 = 0`: one worker, driven in place on the calling thread
//!   (no threads, no channels — the classic single-node pipeline);
//! - `ranks_log2 >= 1`: one worker per rank on its own dedicated thread
//!   via [`qcs_cluster::exec::ClusterSim`], driven by a message-passing
//!   command protocol (apply-gate, apply-batch, exchange, collapse,
//!   snapshot, …). A gate is one scatter/gather wave.
//!
//! Gate routing follows §3.3: intra-block and intra-rank gates are local
//! to each worker; `Route::InterRank` gates pair ranks `r` and
//! `r | stride` and move **compressed** block payloads between the two
//! paired workers over a per-wave duplex link — compress, send, decompress
//! on the receiver — exactly the seam the paper places on MPI.
//!
//! The hybrid adaptive pipeline of §3.7 runs lossless (`qzstd`) until the
//! memory budget (Eq. 8) is exceeded, then walks the error-bound ladder,
//! recording fidelity ledger entries per Eq. 11 (one entry per gate *or*
//! batch wave, gathered across ranks). The compressed-block cache of §3.4
//! is shared by all workers (it is internally sharded), so byte-identical
//! blocks on different ranks still hit.
//!
//! # The batch scheduler
//!
//! By default (`SimConfig::fusion`), circuits are first rewritten by the
//! batch scheduler in [`qcs_circuits::schedule`]: runs of consecutive
//! single-qubit gates on the same qubit fuse into one matrix, and runs of
//! gates whose targets all route intra-block (§3.3 case (a)) group into
//! [`GateBatch`]es. [`CompressedSimulator::apply_batch`] broadcasts the
//! batch plan to every worker; each worker fills its scratch once per
//! *batch*, applies every member gate to the decompressed amplitudes, and
//! recompresses once — amortizing the decompress/recompress cycle that
//! dominates Table 2 across the whole batch. Because a batched
//! recompression is a single lossy event, the fidelity ledger also charges
//! one `delta` per batch instead of one per gate.
//!
//! Cache soundness: a batch's cache key is its schedule-level signature
//! mixed with the per-block *selection mask* (which member gates actually
//! fire on that block, given block/rank-scope controls), so two blocks with
//! identical bytes but different applicable-gate subsets can never share a
//! cache line. Each block touch consults the cache exactly once per batch,
//! not once per member gate.

use crate::block::{BlockCodec, CompressedBlock};
use crate::cache::BlockCache;
use crate::config::SimConfig;
use crate::fidelity_bound::FidelityLedger;
use crate::store::{BlockStore, MemStore, SegmentDirGuard, SpillOptions, SpillStore};
use crate::worker::{
    BatchCmd, BatchPlan, ExchangeCmd, ExchangeRole, GateCmd, Lookahead, RankWorker, WaveOut,
    WorkerCmd, WorkerOut,
};
use qcs_circuits::{
    schedule_circuit, AccessPlan, Circuit, GateBatch, Op, Schedule, ScheduledOp, WaveAccess,
};
use qcs_cluster::exec::{duplex, ClusterSim, Worker as _};
use qcs_cluster::{ControlScope, Layout, Metrics, Phase, Route, TimeBreakdown};
use qcs_compress::ErrorBound;
use qcs_statevec::{Complex64, Gate1, StateVector};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by the compressed simulator.
#[derive(Debug)]
pub enum SimError {
    /// Configuration failed validation.
    Config(String),
    /// A codec failed; indicates corruption or an internal bug.
    Codec(qcs_compress::CodecError),
    /// Checkpoint I/O or format problems.
    Checkpoint(String),
    /// An inter-rank exchange broke down (a paired worker failed).
    Exchange(String),
    /// The out-of-core spill tier failed (segment I/O or a corrupt frame).
    Spill(String),
    /// A collective wave lost a rank worker (thread death locally, or a
    /// dropped/timed-out connection on a socket transport). Fatal for the
    /// simulation: the wave's state updates are lost.
    Cluster(qcs_cluster::ClusterError),
    /// The socket transport failed outside a collective wave (connect,
    /// handshake, or daemon-side setup).
    Transport(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(m) => write!(f, "configuration error: {m}"),
            SimError::Codec(e) => write!(f, "codec error: {e}"),
            SimError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            SimError::Exchange(m) => write!(f, "exchange error: {m}"),
            SimError::Spill(m) => write!(f, "spill error: {m}"),
            SimError::Cluster(e) => write!(f, "cluster error: {e}"),
            SimError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<qcs_compress::CodecError> for SimError {
    fn from(e: qcs_compress::CodecError) -> Self {
        SimError::Codec(e)
    }
}

impl From<qcs_cluster::ClusterError> for SimError {
    fn from(e: qcs_cluster::ClusterError) -> Self {
        SimError::Cluster(e)
    }
}

/// Decision an observer returns after each scheduled item in
/// [`CompressedSimulator::run_schedule_observed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveControl {
    /// Keep running.
    Continue,
    /// Stop now; the partial state is discarded by the caller.
    Cancel,
    /// Stop now at a checkpointable item boundary; the caller intends to
    /// [`crate::checkpoint::save`] the simulator and resume later.
    Suspend,
}

/// How an observed run ended (when no [`SimError`] occurred).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every schedule item ran.
    Completed,
    /// The observer cancelled after item `next_item - 1`; the state is
    /// consistent but the circuit is unfinished.
    Cancelled {
        /// First schedule item that did *not* run.
        next_item: usize,
    },
    /// The observer suspended after item `next_item - 1`; checkpoint the
    /// simulator and resume with `next_item` as `start_item`.
    Suspended {
        /// First schedule item that did *not* run.
        next_item: usize,
    },
}

/// Per-item progress snapshot handed to a run observer by
/// [`CompressedSimulator::run_schedule_observed`].
#[derive(Debug, Clone)]
pub struct WaveStatus {
    /// Index of the schedule item that just finished (0-based).
    pub item: usize,
    /// Total items in the schedule.
    pub items: usize,
    /// Metric deltas accumulated by this item alone (via
    /// [`Metrics::delta_since`]).
    pub delta: TimeBreakdown,
    /// Cumulative report as of the end of this item.
    pub report: SimReport,
}

/// Summary statistics of a finished (or in-progress) simulation, matching
/// the rows of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Qubit count.
    pub num_qubits: u32,
    /// Gates applied so far.
    pub gates: usize,
    /// Wall-clock time in gate processing.
    pub wall_time: Duration,
    /// Per-phase breakdown (compression/decompression/communication/
    /// computation).
    pub breakdown: TimeBreakdown,
    /// Lower bound on fidelity per Eq. 11.
    pub fidelity_lower_bound: f64,
    /// The ladder level currently in force.
    pub current_bound: ErrorBound,
    /// Number of ladder escalations that occurred.
    pub escalations: u64,
    /// Minimum compression ratio observed during the run (Table 2 last row).
    pub min_compression_ratio: f64,
    /// Peak Eq. 8 memory usage in bytes.
    pub peak_memory_bytes: u64,
    /// `2^{n+4}`: what the uncompressed simulation would need.
    pub uncompressed_bytes: u128,
    /// Compressed-block cache hits.
    pub cache_hits: u64,
    /// Compressed-block cache misses.
    pub cache_misses: u64,
    /// Compressed bytes moved between rank workers.
    pub bytes_exchanged: u64,
    /// Wall time spent in inter-rank communication, in nanoseconds.
    pub comm_ns: u64,
    /// Inter-rank block-pair exchanges performed.
    pub exchanges: u64,
    /// Blocks evicted from residency and written to the spill tier
    /// (0 without an out-of-core store).
    pub spills: u64,
    /// Blocks read back from the spill tier.
    pub fetches: u64,
    /// Bytes written to the spill tier.
    pub spill_bytes: u64,
    /// Bytes read back from the spill tier.
    pub fetch_bytes: u64,
    /// Wall time spent in blocking (critical-path) spill-tier I/O, in
    /// nanoseconds.
    pub spill_io_ns: u64,
    /// Spilled fetches served from the prefetch staging buffer — the
    /// background read overlapped with compute (0 with prefetch off or
    /// without an out-of-core store).
    pub prefetch_hits: u64,
    /// Spilled fetches that blocked on a critical-path disk read (with
    /// prefetch off, every spilled fetch is a miss).
    pub prefetch_misses: u64,
    /// Spill-tier bytes read on the critical path (blocking fetches).
    pub blocking_fetch_bytes: u64,
    /// Spill-tier bytes read in the background, off the critical path.
    pub overlapped_fetch_bytes: u64,
    /// Wall time the background prefetch threads spent reading spilled
    /// frames, in nanoseconds (overlap, not critical path).
    pub prefetch_ns: u64,
    /// Spills drained by the background write-behind threads (a subset of
    /// `spills`; 0 with write-behind off).
    pub write_behind_spills: u64,
    /// Bytes those background drains appended, off the critical path.
    pub write_behind_bytes: u64,
    /// Wall time the background write-behind threads spent appending
    /// eviction frames, in nanoseconds (overlap, not critical path).
    pub write_behind_ns: u64,
    /// Block operations served by the segment-addressable partial path
    /// (0 with [`SimConfig::partial_decode`](crate::SimConfig) off or a
    /// whole-stream codec).
    pub partial_decodes: u64,
    /// Segments those operations actually decoded.
    pub segments_decoded: u64,
    /// Segments a whole-block decode would have decoded for them.
    pub segments_full: u64,
    /// Compressed stream bytes the partial operations consumed.
    pub segment_bytes_read: u64,
    /// Compressed stream bytes whole-block decodes would have consumed.
    pub segment_bytes_full: u64,
    /// Codec-side scratch buffers the hot path had to heap-allocate (pool
    /// misses plus mid-wave growth; 0 in an allocation-free steady state).
    pub codec_allocs: u64,
    /// Bytes those codec-side allocations and growths requested.
    pub codec_bytes_alloc: u64,
    /// Scratch requests served by recycling a pooled buffer without
    /// touching the allocator.
    pub scratch_reuse_hits: u64,
}

impl SimReport {
    /// Seconds per gate (Table 2 "Time per Gate" row).
    pub fn time_per_gate(&self) -> f64 {
        if self.gates == 0 {
            0.0
        } else {
            self.wall_time.as_secs_f64() / self.gates as f64
        }
    }

    /// Average inter-rank block exchanges per gate.
    pub fn exchanges_per_gate(&self) -> f64 {
        if self.gates == 0 {
            0.0
        } else {
            self.exchanges as f64 / self.gates as f64
        }
    }

    /// Fraction of spilled fetches that were served from the prefetch
    /// staging buffer instead of blocking on disk (0 when nothing was
    /// fetched).
    pub fn prefetch_hit_rate(&self) -> f64 {
        let total = self.prefetch_hits + self.prefetch_misses;
        if total == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / total as f64
        }
    }
}

/// How the facade drives its rank workers.
enum Backend {
    /// `ranks_log2 = 0`: a single worker, called in place. The pool pins
    /// the configured `threads_per_rank` rayon width around every command
    /// (absent when the config leaves the ambient width in force), so the
    /// single-rank baseline of a ranks×threads sweep is honestly sized.
    Local(Box<RankWorker>, Option<rayon::ThreadPool>),
    /// `ranks_log2 >= 1`: one worker per rank on a dedicated thread.
    Cluster(ClusterSim<RankWorker>),
    /// [`SimConfig::remote`] set: every rank worker is hosted by a
    /// `qcsim-workerd` daemon over TCP; the cluster threads drive
    /// [`crate::net::RemoteWorkerClient`] stubs instead of local workers.
    Remote(ClusterSim<crate::net::RemoteWorkerClient>),
}

/// Run `f` under the local backend's pinned rayon width, if any.
fn with_pool<T>(pool: &Option<rayon::ThreadPool>, f: impl FnOnce() -> T) -> T {
    match pool {
        Some(p) => p.install(f),
        None => f(),
    }
}

/// The compressed-state simulator.
pub struct CompressedSimulator {
    cfg: SimConfig,
    layout: Layout,
    codec: Arc<BlockCodec>,
    cache: Arc<BlockCache>,
    metrics: Metrics,
    backend: Backend,
    /// Last-known compressed byte total per rank (resident + spilled),
    /// refreshed by every state-mutating wave (compression-ratio
    /// accounting without an extra collective).
    rank_bytes: Vec<u64>,
    /// Last-known *resident* compressed bytes per rank — the honest
    /// in-memory footprint (hot residents plus the prefetch-staging and
    /// write-behind buffers), what `peak_memory` reports.
    rank_resident: Vec<u64>,
    /// Last-known deterministic resident bytes per rank (foreground
    /// residents only) — what Eq. 8 charges against the memory budget, so
    /// ladder escalation never depends on background-thread timing.
    rank_hot: Vec<u64>,
    level: usize,
    ledger: FidelityLedger,
    min_ratio: f64,
    peak_memory: u64,
    escalations: u64,
    gates_applied: usize,
    wall_time: Duration,
    /// Keeps the spill directory alive until the facade drops; the last
    /// owner (facade or a per-rank store) removes the whole tree, so a
    /// panicking worker thread cannot leak segment files.
    _spill_guard: Option<Arc<SegmentDirGuard>>,
}

impl CompressedSimulator {
    /// Initialize `|0...0>` on `num_qubits` qubits.
    pub fn new(num_qubits: u32, cfg: SimConfig) -> Result<Self, SimError> {
        cfg.validate(num_qubits).map_err(SimError::Config)?;
        let layout = Layout::new(num_qubits, cfg.ranks_log2, cfg.block_log2);
        let codec = Arc::new(BlockCodec::new(cfg.lossy_codec));
        let blocks = Self::initial_blocks(&cfg, layout, &codec)?;
        Self::from_parts(cfg, layout, codec, 0, FidelityLedger::new(), blocks)
    }

    /// Test-only: [`CompressedSimulator::new`] with every rank's store
    /// wrapped in the recording shim from [`crate::store::trace`], so the
    /// plan-vs-observed property suite can compare an `AccessPlan` against
    /// the slots the workers actually touch.
    #[cfg(test)]
    pub(crate) fn new_traced(
        num_qubits: u32,
        cfg: SimConfig,
        log: crate::store::trace::AccessLog,
    ) -> Result<Self, SimError> {
        cfg.validate(num_qubits).map_err(SimError::Config)?;
        let layout = Layout::new(num_qubits, cfg.ranks_log2, cfg.block_log2);
        let codec = Arc::new(BlockCodec::new(cfg.lossy_codec));
        let blocks = Self::initial_blocks(&cfg, layout, &codec)?;
        Self::from_parts_wrapped(
            cfg,
            layout,
            codec,
            0,
            FidelityLedger::new(),
            blocks,
            |rank, store| {
                Box::new(crate::store::trace::TraceStore::new(
                    rank,
                    Arc::clone(&log),
                    store,
                ))
            },
        )
    }

    /// The `|0...0>` block table: all blocks zero except block 0 of rank 0.
    fn initial_blocks(
        cfg: &SimConfig,
        layout: Layout,
        codec: &BlockCodec,
    ) -> Result<Vec<Option<CompressedBlock>>, SimError> {
        let total_blocks = layout.ranks() * layout.blocks_per_rank();
        let block_f64s = layout.block_amps() * 2;
        let zeros = vec![0.0f64; block_f64s];
        let zero_block = codec.compress(&zeros, cfg.ladder[0])?;
        let mut first = zeros.clone();
        first[0] = 1.0; // amplitude |0...0> = 1 + 0i
        let first_block = codec.compress(&first, cfg.ladder[0])?;
        let mut blocks = Vec::with_capacity(total_blocks);
        blocks.push(Some(first_block));
        for _ in 1..total_blocks {
            blocks.push(Some(zero_block.clone()));
        }
        Ok(blocks)
    }

    /// Assemble a simulator around an existing rank-major block table
    /// (fresh state or checkpoint restore): split the table into per-rank
    /// ownership and stand the backend up.
    fn from_parts(
        cfg: SimConfig,
        layout: Layout,
        codec: Arc<BlockCodec>,
        level: usize,
        ledger: FidelityLedger,
        blocks: Vec<Option<CompressedBlock>>,
    ) -> Result<Self, SimError> {
        Self::from_parts_wrapped(cfg, layout, codec, level, ledger, blocks, |_, store| store)
    }

    /// [`CompressedSimulator::from_parts`] with a store-wrapping seam:
    /// the engine's plan-vs-observed property suite interposes an
    /// instrumented shim between each worker and its real store through
    /// `wrap(rank, store)`; production callers pass the identity.
    fn from_parts_wrapped(
        cfg: SimConfig,
        layout: Layout,
        codec: Arc<BlockCodec>,
        level: usize,
        ledger: FidelityLedger,
        blocks: Vec<Option<CompressedBlock>>,
        wrap: impl Fn(usize, Box<dyn BlockStore>) -> Box<dyn BlockStore>,
    ) -> Result<Self, SimError> {
        let ranks = layout.ranks();
        let bpr = layout.blocks_per_rank();
        debug_assert_eq!(blocks.len(), ranks * bpr);
        let cache = Arc::new(BlockCache::new(
            cfg.cache_lines,
            cfg.cache_auto_disable_after,
        ));
        let metrics = Metrics::new();
        // Warm the codec's scratch pool so even the first waves run
        // allocation-free (prewarm is deliberately uncounted).
        codec.prewarm(
            layout.block_amps() * 2,
            (4 * rayon::current_num_threads() + 4).min(32),
        );

        // Remote transport takes precedence over the in-process backends
        // (even at one rank): the blocks ship to the daemons during the
        // handshake, and no local stores are built at all — each daemon
        // owns its rank's store (and spill directory, if any).
        if let Some(remote) = cfg.remote.clone() {
            let mut per_rank: Vec<Vec<Option<CompressedBlock>>> = Vec::with_capacity(ranks);
            let mut rank_bytes = Vec::with_capacity(ranks);
            let mut iter = blocks.into_iter();
            for _ in 0..ranks {
                let local: Vec<_> = iter.by_ref().take(bpr).collect();
                rank_bytes.push(
                    local
                        .iter()
                        .flatten()
                        .map(|b| b.bytes.len() as u64)
                        .sum::<u64>(),
                );
                per_rank.push(local);
            }
            let clients =
                crate::net::connect_cluster(&remote, &cfg, layout, &per_rank, metrics.clone())?;
            let mut sim = Self {
                cfg,
                layout,
                codec,
                cache,
                metrics,
                backend: Backend::Remote(ClusterSim::new(clients, None)),
                rank_bytes: rank_bytes.clone(),
                rank_resident: rank_bytes.clone(),
                rank_hot: rank_bytes,
                level,
                ledger,
                min_ratio: f64::INFINITY,
                peak_memory: 0,
                escalations: 0,
                gates_applied: 0,
                wall_time: Duration::ZERO,
                _spill_guard: None,
            };
            sim.note_memory();
            return Ok(sim);
        }

        let spill_guard = match &cfg.spill {
            Some(spill) => Some(SegmentDirGuard::create(&spill.directory())?),
            None => None,
        };
        let mut rank_bytes = Vec::with_capacity(ranks);
        let mut rank_resident = Vec::with_capacity(ranks);
        let mut rank_hot = Vec::with_capacity(ranks);
        let mut stores: Vec<Box<dyn BlockStore>> = Vec::with_capacity(ranks);
        let mut iter = blocks.into_iter();
        for rank in 0..ranks {
            let local: Vec<_> = iter.by_ref().take(bpr).collect();
            let store: Box<dyn BlockStore> = match (&cfg.spill, &spill_guard) {
                (Some(spill), Some(guard)) => Box::new(SpillStore::create_with(
                    guard.path(),
                    &format!("r{rank}"),
                    spill.resident_blocks,
                    metrics.clone(),
                    local,
                    SpillOptions {
                        prefetch: cfg.prefetch,
                        dir_guard: Some(Arc::clone(guard)),
                        eviction: spill.eviction,
                        write_behind: spill.write_behind,
                        shards: spill.shards,
                    },
                )?),
                _ => Box::new(MemStore::new(local)),
            };
            let store = wrap(rank, store);
            rank_bytes.push(store.compressed_bytes());
            rank_resident.push(store.resident_bytes());
            rank_hot.push(store.hot_bytes());
            stores.push(store);
        }

        let workers: Vec<RankWorker> = stores
            .into_iter()
            .enumerate()
            .map(|(rank, store)| {
                RankWorker::new(
                    rank,
                    layout,
                    Arc::clone(&codec),
                    Arc::clone(&cache),
                    metrics.clone(),
                    store,
                    cfg.partial_decode,
                )
            })
            .collect();
        let backend = if ranks == 1 {
            let pool = cfg.threads_per_rank.map(|threads| {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("local rank rayon pool")
            });
            Backend::Local(
                Box::new(workers.into_iter().next().expect("one worker")),
                pool,
            )
        } else {
            Backend::Cluster(ClusterSim::new(workers, cfg.threads_per_rank))
        };

        let mut sim = Self {
            cfg,
            layout,
            codec,
            cache,
            metrics,
            backend,
            rank_bytes,
            rank_resident,
            rank_hot,
            level,
            ledger,
            min_ratio: f64::INFINITY,
            peak_memory: 0,
            escalations: 0,
            gates_applied: 0,
            wall_time: Duration::ZERO,
            _spill_guard: spill_guard,
        };
        sim.note_memory();
        Ok(sim)
    }

    /// The layout in force.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Qubit count.
    pub fn num_qubits(&self) -> u32 {
        self.layout.num_qubits
    }

    /// Current ladder bound.
    pub fn current_bound(&self) -> ErrorBound {
        self.cfg.ladder[self.level]
    }

    /// Number of rank workers executing this simulation.
    pub fn ranks(&self) -> usize {
        self.layout.ranks()
    }

    /// Sum of compressed block sizes across all ranks, resident plus
    /// spilled.
    pub fn compressed_bytes(&self) -> u64 {
        self.rank_bytes.iter().sum()
    }

    /// Compressed bytes actually resident in RAM across all ranks (equal
    /// to [`CompressedSimulator::compressed_bytes`] without an out-of-core
    /// store).
    pub fn resident_bytes(&self) -> u64 {
        self.rank_resident.iter().sum()
    }

    /// Eq. 8 memory accounting: compressed blocks held *in memory* plus
    /// two decompression scratch buffers per rank. Spilled blocks live on
    /// disk and are not charged.
    ///
    /// "In memory" is the honest footprint of an out-of-core store: hot
    /// residents **plus** blocks staged by the prefetch pipeline **plus**
    /// blocks parked in the write-behind dirty buffer. Each of those
    /// buffers is bounded by one residency budget of compressed blocks,
    /// so the tier's ceiling is at most budget + staging + dirty — what
    /// the peak-memory regression in `tests/eviction_policy.rs` pins.
    /// Because the two buffers drain on background threads, their
    /// occupancy at a sample point is timing-dependent; this quantity
    /// feeds `peak_memory_bytes` reporting, while the adaptive-ladder
    /// escalation decision uses the deterministic
    /// [`CompressedSimulator::hot_memory_bytes`].
    pub fn memory_bytes(&self) -> u64 {
        let scratch = 2 * (self.layout.block_amps() as u64) * 16;
        self.resident_bytes() + self.layout.ranks() as u64 * scratch
    }

    /// The deterministic variant of [`CompressedSimulator::memory_bytes`]
    /// the ladder escalates on: foreground residents plus scratch only,
    /// excluding the timing-dependent prefetch-staging and write-behind
    /// occupancy. Keyed on this, escalation — and therefore the simulated
    /// amplitudes — is reproducible run-to-run even when a
    /// `memory_budget` is combined with the background pipelines.
    /// Identical to `memory_bytes` without an out-of-core store.
    pub fn hot_memory_bytes(&self) -> u64 {
        let scratch = 2 * (self.layout.block_amps() as u64) * 16;
        self.rank_hot.iter().sum::<u64>() + self.layout.ranks() as u64 * scratch
    }

    /// Current compression ratio: uncompressed state bytes over compressed
    /// block bytes.
    pub fn compression_ratio(&self) -> f64 {
        self.layout.uncompressed_bytes() as f64 / self.compressed_bytes().max(1) as f64
    }

    fn note_memory(&mut self) {
        let mem = self.memory_bytes();
        if mem > self.peak_memory {
            self.peak_memory = mem;
        }
        let ratio = self.compression_ratio();
        if ratio < self.min_ratio {
            self.min_ratio = ratio;
        }
    }

    // --- wave dispatch ----------------------------------------------------

    /// Scatter one command per rank and gather the mutating-wave outputs,
    /// refreshing the per-rank byte watermarks.
    fn mutate_wave(&mut self, cmds: Vec<WorkerCmd>) -> Result<Vec<WaveOut>, SimError> {
        let outs: Vec<WaveOut> = match &mut self.backend {
            Backend::Local(w, pool) => {
                let cmd = cmds.into_iter().next().expect("one command");
                vec![with_pool(pool, || w.handle(cmd))?.wave()]
            }
            Backend::Cluster(c) => {
                let resps = c.dispatch(cmds)?;
                let mut outs = Vec::with_capacity(resps.len());
                for resp in resps {
                    outs.push(resp?.wave());
                }
                outs
            }
            Backend::Remote(c) => {
                let resps = c.dispatch(cmds)?;
                let mut outs = Vec::with_capacity(resps.len());
                for resp in resps {
                    outs.push(resp?.wave());
                }
                outs
            }
        };
        for (rank, wave) in outs.iter().enumerate() {
            self.rank_bytes[rank] = wave.compressed_bytes;
            self.rank_resident[rank] = wave.resident_bytes;
            self.rank_hot[rank] = wave.hot_bytes;
        }
        Ok(outs)
    }

    /// Broadcast one mutating command to every rank (`make` receives the
    /// rank index, so per-rank payloads like prefetch lookaheads can
    /// differ).
    fn mutate_all(&mut self, make: impl Fn(usize) -> WorkerCmd) -> Result<Vec<WaveOut>, SimError> {
        let cmds = (0..self.layout.ranks()).map(make).collect();
        self.mutate_wave(cmds)
    }

    /// Per-rank lookahead payloads for the next planned wave: rank `r`
    /// gets the first slots `next.per_rank[r]` will touch, truncated to
    /// the staging budget. All `None` when the run is not prefetching.
    fn lookahead_for(&self, next: Option<&WaveAccess>) -> Vec<Lookahead> {
        let ranks = self.layout.ranks();
        match (next, &self.cfg.spill) {
            (Some(wave), Some(spill)) if self.cfg.prefetch => {
                let cap = spill.resident_blocks.max(1);
                (0..ranks)
                    .map(|r| {
                        let slots = &wave.per_rank[r];
                        if slots.is_empty() {
                            None
                        } else {
                            Some(Arc::new(slots[..slots.len().min(cap)].to_vec()))
                        }
                    })
                    .collect()
            }
            _ => vec![None; ranks],
        }
    }

    /// Broadcast one read-only command to every rank.
    fn query_all(&self, make: impl Fn() -> WorkerCmd) -> Result<Vec<WorkerOut>, SimError> {
        match &self.backend {
            Backend::Local(w, pool) => Ok(vec![with_pool(pool, || w.query(make()))?]),
            Backend::Cluster(c) => {
                let cmds = (0..c.ranks()).map(|_| make()).collect();
                c.dispatch(cmds)?.into_iter().collect()
            }
            Backend::Remote(c) => {
                let cmds = (0..c.ranks()).map(|_| make()).collect();
                c.dispatch(cmds)?.into_iter().collect()
            }
        }
    }

    /// Send one read-only command to a single rank (all others no-op).
    fn query_rank(&self, rank: usize, cmd_for_rank: WorkerCmd) -> Result<WorkerOut, SimError> {
        match &self.backend {
            Backend::Local(w, pool) => with_pool(pool, || w.query(cmd_for_rank)),
            Backend::Cluster(c) => {
                let mut cmd = Some(cmd_for_rank);
                let cmds = (0..c.ranks())
                    .map(|r| {
                        if r == rank {
                            cmd.take().expect("one target rank")
                        } else {
                            WorkerCmd::Nop
                        }
                    })
                    .collect();
                let mut out = None;
                for (r, resp) in c.dispatch(cmds)?.into_iter().enumerate() {
                    let resp = resp?;
                    if r == rank {
                        out = Some(resp);
                    }
                }
                Ok(out.expect("target rank answered"))
            }
            Backend::Remote(c) => {
                let mut cmd = Some(cmd_for_rank);
                let cmds = (0..c.ranks())
                    .map(|r| {
                        if r == rank {
                            cmd.take().expect("one target rank")
                        } else {
                            WorkerCmd::Nop
                        }
                    })
                    .collect();
                let mut out = None;
                for (r, resp) in c.dispatch(cmds)?.into_iter().enumerate() {
                    let resp = resp?;
                    if r == rank {
                        out = Some(resp);
                    }
                }
                Ok(out.expect("target rank answered"))
            }
        }
    }

    /// Fold a finished gate/batch wave into the ledger and the modeled
    /// link time (one ledger entry per wave, as a batched recompression is
    /// a single lossy event).
    fn finish_wave(&mut self, waves: &[WaveOut], bound: ErrorBound) {
        let any_lossy = waves.iter().any(|w| w.lossy);
        self.ledger
            .record_gate(if any_lossy { bound.magnitude() } else { 0.0 });
        let comm_bytes: u64 = waves.iter().map(|w| w.comm_bytes).sum();
        if comm_bytes > 0 {
            if let Some(bw) = self.cfg.modeled_link_bandwidth {
                self.metrics.add(
                    Phase::Communication,
                    Duration::from_secs_f64(comm_bytes as f64 / bw),
                );
            }
        }
    }

    // --- circuit execution ------------------------------------------------

    /// Run a full circuit. `rng` drives intermediate measurements.
    ///
    /// When [`SimConfig::fusion`] is on (the default) the circuit first
    /// passes through the batch scheduler; disable it to execute gate by
    /// gate exactly as written.
    pub fn run(&mut self, circuit: &Circuit, rng: &mut impl rand::Rng) -> Result<(), SimError> {
        assert_eq!(circuit.num_qubits() as u32, self.layout.num_qubits);
        if self.cfg.fusion {
            let schedule = schedule_circuit(circuit, &self.cfg.fusion_policy());
            self.run_schedule(&schedule, rng)
        } else {
            for op in circuit.ops() {
                self.apply_op(op, rng)?;
            }
            Ok(())
        }
    }

    /// Run a pre-built [`Schedule`] (e.g. one reused across shots).
    ///
    /// The schedule must have been produced for this simulator's block
    /// geometry: a batch whose target does not route intra-block is a
    /// configuration error.
    ///
    /// On an out-of-core run with [`SimConfig::prefetch`] on, each wave
    /// is dispatched with the *next* scheduled item's first planned wave
    /// as its prefetch lookahead — an [`AccessPlan::for_item`] lookup,
    /// computed lazily so planning memory stays proportional to one item
    /// rather than the whole schedule. Spill-tier reads therefore stream
    /// ahead across wave boundaries as well as between chunks inside a
    /// wave.
    pub fn run_schedule(
        &mut self,
        schedule: &Schedule,
        rng: &mut impl rand::Rng,
    ) -> Result<(), SimError> {
        self.run_schedule_observed(schedule, rng, 0, &mut |_| WaveControl::Continue)
            .map(|_| ())
    }

    /// Run a [`Schedule`] from `start_item`, consulting `observer` after
    /// every scheduled item — the cancellation/suspension hook in the wave
    /// loop, and the seam the job server streams per-wave metrics through.
    ///
    /// The observer receives a [`WaveStatus`] (item index, cumulative
    /// [`SimReport`], and the [`TimeBreakdown`] delta accumulated by that
    /// item alone) and answers with a [`WaveControl`]. Returning
    /// [`WaveControl::Cancel`] or [`WaveControl::Suspend`] stops the run at
    /// an item boundary with the state fully consistent: a suspended
    /// simulator can be checkpointed with [`crate::checkpoint::save`] and a
    /// restored one resumed by calling this again with
    /// [`RunOutcome::Suspended::next_item`] as `start_item` (and the same
    /// schedule).
    ///
    /// Resume caveat: `rng` state is not checkpointed, so a resumed run of
    /// a circuit with intermediate measurements draws from whatever `rng`
    /// it is handed. Measurement-free circuits (every differential suite
    /// workload) resume bit-identically.
    pub fn run_schedule_observed(
        &mut self,
        schedule: &Schedule,
        rng: &mut impl rand::Rng,
        start_item: usize,
        observer: &mut impl FnMut(WaveStatus) -> WaveControl,
    ) -> Result<RunOutcome, SimError> {
        assert_eq!(schedule.num_qubits() as u32, self.layout.num_qubits);
        let planning = self.cfg.prefetch && self.cfg.spill.is_some();
        let items = schedule.items();
        assert!(
            start_item <= items.len(),
            "start_item {start_item} out of range for {} items",
            items.len()
        );
        let mut since = self.metrics.breakdown();
        for (i, item) in items.iter().enumerate().skip(start_item) {
            let next_waves = (planning && i + 1 < items.len()).then(|| {
                AccessPlan::for_item(
                    &items[i + 1],
                    self.layout.num_qubits,
                    self.cfg.ranks_log2,
                    self.cfg.block_log2,
                )
            });
            let lookahead = next_waves
                .as_ref()
                .and_then(|waves| waves.iter().find(|w| !w.is_empty()));
            self.apply_item(item, rng, lookahead)?;
            let delta = self.metrics.delta_since(&mut since);
            let status = WaveStatus {
                item: i,
                items: items.len(),
                delta,
                report: self.report(),
            };
            match observer(status) {
                WaveControl::Continue => {}
                WaveControl::Cancel => return Ok(RunOutcome::Cancelled { next_item: i + 1 }),
                WaveControl::Suspend => return Ok(RunOutcome::Suspended { next_item: i + 1 }),
            }
        }
        Ok(RunOutcome::Completed)
    }

    /// Apply one scheduled item, with the next planned wave's access (if
    /// any) as the prefetch lookahead. Exposed to the crate's
    /// plan-vs-observed property suite, which drives items one at a time
    /// against an instrumented store.
    pub(crate) fn apply_item(
        &mut self,
        item: &ScheduledOp,
        rng: &mut impl rand::Rng,
        lookahead: Option<&WaveAccess>,
    ) -> Result<(), SimError> {
        match item {
            ScheduledOp::Batch(batch) => self.apply_batch_planned(batch, lookahead),
            ScheduledOp::Gate(g) => {
                let start = Instant::now();
                self.apply_unitary(
                    g.signature,
                    &g.op.gate,
                    &g.op.controls,
                    g.op.target,
                    lookahead,
                )?;
                self.gates_applied += g.src_len;
                self.wall_time += start.elapsed();
                self.after_gate()
            }
            ScheduledOp::Bare { op, .. } => self.apply_op(op, rng),
        }
    }

    /// Apply one operation.
    pub fn apply_op(&mut self, op: &Op, rng: &mut impl rand::Rng) -> Result<(), SimError> {
        let start = Instant::now();
        match op {
            Op::Single { gate, target } => {
                self.apply_unitary(op.signature(), &gate.matrix(), &[], *target, None)?;
            }
            Op::Controlled {
                gate,
                control,
                target,
            } => {
                self.apply_unitary(op.signature(), &gate.matrix(), &[*control], *target, None)?;
            }
            Op::MultiControlled {
                gate,
                controls,
                target,
            } => {
                self.apply_unitary(op.signature(), &gate.matrix(), controls, *target, None)?;
            }
            Op::Swap { a, b } => {
                // SWAP = CX(a,b) CX(b,a) CX(a,b); counted as one gate.
                let x = Gate1::x();
                self.apply_unitary(op.signature() ^ 1, &x, &[*a], *b, None)?;
                self.apply_unitary(op.signature() ^ 2, &x, &[*b], *a, None)?;
                self.apply_unitary(op.signature() ^ 3, &x, &[*a], *b, None)?;
            }
            Op::Measure { target } => {
                self.measure(*target, rng)?;
            }
        }
        self.gates_applied += 1;
        self.wall_time += start.elapsed();
        self.after_gate()
    }

    /// Post-gate epilogue: walk the adaptive ladder (§3.7) while over
    /// budget, then refresh the memory/ratio watermarks. Escalation keys
    /// on the deterministic hot footprint so the ladder walk (and the
    /// amplitudes it shapes) never depends on background-thread timing.
    fn after_gate(&mut self) -> Result<(), SimError> {
        if let Some(budget) = self.cfg.memory_budget {
            while self.hot_memory_bytes() > budget && self.level + 1 < self.cfg.ladder.len() {
                self.level += 1;
                self.escalations += 1;
                if self.cfg.recompress_on_escalate {
                    self.recompress_all()?;
                }
            }
        }
        self.note_memory();
        Ok(())
    }

    /// Partition control qubits by scope (§3.3).
    fn control_masks(&self, controls: &[usize]) -> (usize, usize, usize) {
        let mut offset_cmask = 0usize;
        let mut block_cmask = 0usize;
        let mut rank_cmask = 0usize;
        for &c in controls {
            match self.layout.control_scope(c as u32) {
                ControlScope::InBlock { offset_bit } => offset_cmask |= 1 << offset_bit,
                ControlScope::BlockSelect { block_bit } => block_cmask |= 1 << block_bit,
                ControlScope::RankSelect { rank_bit } => rank_cmask |= 1 << rank_bit,
            }
        }
        (offset_cmask, block_cmask, rank_cmask)
    }

    /// Apply a (multi-)controlled single-qubit unitary: one wave across all
    /// rank workers, routed per §3.3. `lookahead` carries the next planned
    /// wave's access so the workers can prefetch across the wave boundary.
    fn apply_unitary(
        &mut self,
        op_signature: u64,
        gate: &Gate1,
        controls: &[usize],
        target: usize,
        lookahead: Option<&WaveAccess>,
    ) -> Result<(), SimError> {
        let layout = self.layout;
        let (offset_cmask, block_cmask, rank_cmask) = self.control_masks(controls);
        let bound = self.cfg.ladder[self.level];
        let lookaheads = self.lookahead_for(lookahead);

        let waves = match layout.route(target as u32) {
            route @ (Route::InBlock { .. } | Route::InterBlock { .. }) => {
                let cmd = GateCmd {
                    signature: op_signature,
                    gate: *gate,
                    route,
                    offset_cmask,
                    block_cmask,
                    rank_cmask,
                    bound,
                    lookahead: None,
                };
                self.mutate_all(|rank| {
                    let mut cmd = cmd.clone();
                    cmd.lookahead = lookaheads[rank].clone();
                    WorkerCmd::Gate(cmd)
                })?
            }
            Route::InterRank { rank_stride } => {
                // Pair rank r with r | stride; rank-scope controls deselect
                // whole pairs (both members share the non-stride bits).
                let ranks = layout.ranks();
                let mut roles: Vec<ExchangeRole> = (0..ranks).map(|_| ExchangeRole::Idle).collect();
                for r in 0..ranks {
                    if r & rank_stride != 0 || r & rank_cmask != rank_cmask {
                        continue;
                    }
                    let (lead, follow) = duplex();
                    roles[r] = ExchangeRole::Lead(lead);
                    roles[r | rank_stride] = ExchangeRole::Follow(follow);
                }
                let cmds = roles
                    .into_iter()
                    .zip(&lookaheads)
                    .map(|(role, lookahead)| {
                        WorkerCmd::Exchange(ExchangeCmd {
                            signature: op_signature,
                            gate: *gate,
                            offset_cmask,
                            block_cmask,
                            bound,
                            role,
                            lookahead: lookahead.clone(),
                        })
                    })
                    .collect();
                self.mutate_wave(cmds)?
            }
        };
        self.finish_wave(&waves, bound);
        Ok(())
    }

    /// Apply a [`GateBatch`]: every member gate targets an intra-block
    /// qubit, so each worker decompresses each of its blocks once, applies
    /// all applicable gates, and recompresses once.
    ///
    /// Block/rank-scope controls are honored through a per-block *selection
    /// mask*: member gate `i` fires on a block only when the block's rank
    /// and block index bits cover the gate's control masks. The mask is
    /// mixed into the cache key, and blocks no gate selects are skipped
    /// outright (no touch, no cache traffic).
    pub fn apply_batch(&mut self, batch: &GateBatch) -> Result<(), SimError> {
        self.apply_batch_planned(batch, None)
    }

    /// [`CompressedSimulator::apply_batch`] with the next planned wave's
    /// access as the prefetch lookahead (the path `run_schedule` drives).
    fn apply_batch_planned(
        &mut self,
        batch: &GateBatch,
        lookahead: Option<&WaveAccess>,
    ) -> Result<(), SimError> {
        let start = Instant::now();
        let layout = self.layout;

        // Precompute per-gate kernels and control masks.
        let mut plans = Vec::with_capacity(batch.len());
        for fg in batch.gates() {
            let offset_bit = match layout.route(fg.op.target as u32) {
                Route::InBlock { offset_bit } => offset_bit,
                other => {
                    return Err(SimError::Config(format!(
                        "batched target {} routes {other:?}; schedule was built \
                         for a different block geometry",
                        fg.op.target
                    )))
                }
            };
            let (offset_cmask, block_cmask, rank_cmask) = self.control_masks(&fg.op.controls);
            plans.push(BatchPlan {
                gate: fg.op.gate,
                offset_bit,
                offset_cmask,
                block_cmask,
                rank_cmask,
            });
        }

        let bound = self.cfg.ladder[self.level];
        let lookaheads = self.lookahead_for(lookahead);
        let cmd = BatchCmd {
            plans: Arc::new(plans),
            signature: batch.signature(),
            bound,
            lookahead: None,
        };
        let waves = self.mutate_all(|rank| {
            let mut cmd = cmd.clone();
            cmd.lookahead = lookaheads[rank].clone();
            WorkerCmd::Batch(cmd)
        })?;
        self.finish_wave(&waves, bound);
        self.gates_applied += batch.source_gate_count();
        self.wall_time += start.elapsed();
        self.after_gate()
    }

    /// Recompress every block at the current ladder level (used after an
    /// escalation so the budget is actually enforced).
    fn recompress_all(&mut self) -> Result<(), SimError> {
        let bound = self.cfg.ladder[self.level];
        self.mutate_all(|_| WorkerCmd::Recompress { bound })?;
        if bound.is_lossy() {
            // The recompression pass is itself a lossy compression event.
            self.ledger.record_gate(bound.magnitude());
        }
        Ok(())
    }

    // --- measurement and observables --------------------------------------

    /// Probability that `qubit` reads `|1>` (a sum-reduce across ranks).
    pub fn prob_one(&self, qubit: usize) -> Result<f64, SimError> {
        let scope = self.layout.control_scope(qubit as u32);
        let outs = self.query_all(|| WorkerCmd::ProbOne { scope })?;
        Ok(outs.into_iter().map(|o| o.scalar()).sum())
    }

    /// Measure `qubit`, collapsing the state (intermediate measurement,
    /// the capability §1 argues full-state simulation enables). This is
    /// the measure-reduce collective: a probability sum-reduce, the RNG
    /// decision on the facade, and a collapse wave.
    pub fn measure(&mut self, qubit: usize, rng: &mut impl rand::Rng) -> Result<bool, SimError> {
        let p1 = self.prob_one(qubit)?;
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(qubit, outcome, if outcome { p1 } else { 1.0 - p1 })?;
        Ok(outcome)
    }

    /// Collapse `qubit` to `outcome` with prior probability `p`.
    fn collapse(&mut self, qubit: usize, outcome: bool, p: f64) -> Result<(), SimError> {
        assert!(p > 0.0, "collapse onto zero-probability outcome");
        let scope = self.layout.control_scope(qubit as u32);
        let scale = 1.0 / p.sqrt();
        let bound = self.cfg.ladder[self.level];
        let waves = self.mutate_all(|_| WorkerCmd::Collapse {
            scope,
            outcome,
            scale,
            bound,
        })?;
        if waves.iter().any(|w| w.lossy) {
            self.ledger.record_gate(bound.magnitude());
        }
        Ok(())
    }

    /// Squared 2-norm of the stored state (1 up to compression error).
    pub fn norm_sqr(&self) -> Result<f64, SimError> {
        let outs = self.query_all(|| WorkerCmd::NormSqr)?;
        Ok(outs.into_iter().map(|o| o.scalar()).sum())
    }

    /// Decompress the full state into a dense [`StateVector`].
    ///
    /// Only sensible for small `n`; used by tests, fidelity measurement and
    /// the benchmark harness.
    pub fn snapshot_dense(&self) -> Result<StateVector, SimError> {
        let layout = self.layout;
        let mut amps = vec![Complex64::ZERO; layout.total_amps() as usize];
        let outs = self.query_all(|| WorkerCmd::SnapshotBlocks)?;
        let mut buf = Vec::new();
        for (rank, out) in outs.into_iter().enumerate() {
            let blocks = match out {
                WorkerOut::Blocks(v) => v,
                _ => unreachable!("snapshot returns blocks"),
            };
            for (b, blk) in blocks.iter().enumerate() {
                self.codec.decompress(blk, &mut buf)?;
                let base = layout.join(rank, b, 0) as usize;
                for o in 0..layout.block_amps() {
                    amps[base + o] = Complex64::new(buf[2 * o], buf[2 * o + 1]);
                }
            }
        }
        Ok(StateVector::from_amplitudes(amps))
    }

    /// Flat interleaved (re, im) dump of the state. Used by the benchmark
    /// harness to produce compressor workloads (`qaoa_36`/`sup_36`-style
    /// snapshots).
    pub fn snapshot_f64(&self) -> Result<Vec<f64>, SimError> {
        let sv = self.snapshot_dense()?;
        Ok(sv.as_f64_slice().to_vec())
    }

    /// Sample one basis-state index from the current distribution.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> Result<u64, SimError> {
        let layout = self.layout;
        let bpr = layout.blocks_per_rank();
        // Two-pass: per-block weights across ranks, then within the chosen
        // block (fetched compressed from its owner).
        let outs = self.query_all(|| WorkerCmd::Weights)?;
        let weights: Vec<f64> = outs
            .into_iter()
            .flat_map(|o| match o {
                WorkerOut::Weights(w) => w,
                _ => unreachable!("weights response"),
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut r = rng.gen::<f64>() * total;
        let mut slot = weights.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if r < *w {
                slot = i;
                break;
            }
            r -= w;
        }
        let block = self.fetch_block(slot / bpr, slot % bpr)?;
        let mut buf = Vec::new();
        self.codec.decompress(&block, &mut buf)?;
        let mut o = layout.block_amps() - 1;
        for i in 0..layout.block_amps() {
            let w = buf[2 * i] * buf[2 * i] + buf[2 * i + 1] * buf[2 * i + 1];
            if r < w {
                o = i;
                break;
            }
            r -= w;
        }
        Ok(layout.join(slot / bpr, slot % bpr, o))
    }

    /// Expectation value of `Z` on `qubit`: `P(0) - P(1)`.
    pub fn expectation_z(&self, qubit: usize) -> Result<f64, SimError> {
        Ok(1.0 - 2.0 * self.prob_one(qubit)?)
    }

    /// Expectation value of `Z_a Z_b` (the MAXCUT cost term), computed in
    /// one blockwise pass per rank without decompressing the full state at
    /// once.
    pub fn expectation_zz(&self, a: usize, b: usize) -> Result<f64, SimError> {
        assert!(a != b, "zz needs distinct qubits");
        let layout = self.layout;
        assert!(a < layout.num_qubits as usize && b < layout.num_qubits as usize);
        let outs = self.query_all(|| WorkerCmd::ExpectationZz { a, b })?;
        Ok(outs.into_iter().map(|o| o.scalar()).sum())
    }

    /// Progress/result report (Table 2 rows).
    pub fn report(&self) -> SimReport {
        // Drain the codec's scratch counters into the shared sink so the
        // report reflects allocations up to this instant (remote workers
        // drain their own codecs and ship deltas over the wire instead).
        let c = self.codec.take_counters();
        self.metrics
            .add_codec_counters(c.codec_allocs, c.codec_bytes_alloc, c.scratch_reuse_hits);
        let breakdown = self.metrics.breakdown();
        SimReport {
            num_qubits: self.layout.num_qubits,
            gates: self.gates_applied,
            wall_time: self.wall_time,
            fidelity_lower_bound: self.ledger.lower_bound(),
            current_bound: self.current_bound(),
            escalations: self.escalations,
            min_compression_ratio: if self.min_ratio.is_finite() {
                self.min_ratio
            } else {
                self.compression_ratio()
            },
            peak_memory_bytes: self.peak_memory,
            uncompressed_bytes: self.layout.uncompressed_bytes(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            bytes_exchanged: breakdown.comm_bytes,
            comm_ns: breakdown.comm_ns(),
            exchanges: breakdown.exchanges,
            spills: breakdown.spills,
            fetches: breakdown.fetches,
            spill_bytes: breakdown.spill_bytes,
            fetch_bytes: breakdown.fetch_bytes,
            spill_io_ns: breakdown.spill_io_ns(),
            prefetch_hits: breakdown.prefetch_hits,
            prefetch_misses: breakdown.prefetch_misses,
            blocking_fetch_bytes: breakdown.blocking_fetch_bytes,
            overlapped_fetch_bytes: breakdown.overlapped_fetch_bytes,
            prefetch_ns: breakdown.prefetch_ns(),
            write_behind_spills: breakdown.write_behind_spills,
            write_behind_bytes: breakdown.write_behind_bytes,
            write_behind_ns: breakdown.write_behind_ns(),
            partial_decodes: breakdown.partial_decodes,
            segments_decoded: breakdown.segments_decoded,
            segments_full: breakdown.segments_full,
            segment_bytes_read: breakdown.segment_bytes_read,
            segment_bytes_full: breakdown.segment_bytes_full,
            codec_allocs: breakdown.codec_allocs,
            codec_bytes_alloc: breakdown.codec_bytes_alloc,
            scratch_reuse_hits: breakdown.scratch_reuse_hits,
            breakdown,
        }
    }

    /// The fidelity ledger.
    pub fn ledger(&self) -> &FidelityLedger {
        &self.ledger
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The block cache (for hit-rate inspection).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    // --- checkpoint support (fields exposed to the checkpoint module) ---

    /// Clone one block from its owning rank (a disk read when the block is
    /// spilled; residency is not disturbed). Checkpointing streams the
    /// state through this one block at a time, so saving never
    /// materializes more than a single compressed block beyond the
    /// workers' own residency budgets — even when the compressed state is
    /// far larger than RAM.
    pub(crate) fn fetch_block(
        &self,
        rank: usize,
        block: usize,
    ) -> Result<CompressedBlock, SimError> {
        match self.query_rank(rank, WorkerCmd::FetchBlock { block })? {
            WorkerOut::Block(b) => Ok(b),
            _ => unreachable!("block response"),
        }
    }

    pub(crate) fn checkpoint_parts(&self) -> (&SimConfig, Layout, usize, &FidelityLedger) {
        (&self.cfg, self.layout, self.level, &self.ledger)
    }

    pub(crate) fn from_checkpoint_parts(
        cfg: SimConfig,
        level: usize,
        ledger: FidelityLedger,
        blocks: Vec<Option<CompressedBlock>>,
        num_qubits: u32,
    ) -> Result<Self, SimError> {
        cfg.validate(num_qubits).map_err(SimError::Config)?;
        let layout = Layout::new(num_qubits, cfg.ranks_log2, cfg.block_log2);
        if blocks.len() != layout.ranks() * layout.blocks_per_rank() {
            return Err(SimError::Checkpoint("block count mismatch".into()));
        }
        if level >= cfg.ladder.len() {
            return Err(SimError::Checkpoint("ladder level out of range".into()));
        }
        let codec = Arc::new(BlockCodec::new(cfg.lossy_codec));
        Self::from_parts(cfg, layout, codec, level, ledger, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuits::hadamard_wall;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> SimConfig {
        SimConfig::default().with_block_log2(3).with_ranks_log2(1)
    }

    #[test]
    fn initial_state_is_zero_ket() {
        let sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let sv = sim.snapshot_dense().unwrap();
        assert!(sv.amplitudes()[0].approx_eq(Complex64::ONE, 1e-15));
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn matches_dense_on_all_three_routes() {
        // n=6, ranks=2^1, block=2^3: offsets 0-2, block bits 3-4, rank bit 5.
        let mut rng = StdRng::seed_from_u64(0);
        for target in 0..6usize {
            let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
            let mut c = Circuit::new(6);
            c.h(0).h(3).h(5); // spread across all segments
            c.h(target);
            c.t(target);
            sim.run(&c, &mut rng).unwrap();
            let dense = c.simulate_dense(&mut rng);
            let f = sim.snapshot_dense().unwrap().fidelity(&dense);
            assert!(f > 1.0 - 1e-12, "target {target}: fidelity {f}");
        }
    }

    #[test]
    fn controlled_gates_match_dense_across_scopes() {
        let mut rng = StdRng::seed_from_u64(0);
        // Controls in offset / block / rank segments, target likewise.
        let pairs = [(0, 4), (4, 0), (5, 1), (1, 5), (3, 4), (5, 3)];
        for (control, target) in pairs {
            let mut c = Circuit::new(6);
            for q in 0..6 {
                c.h(q);
            }
            c.t(control);
            c.cx(control, target);
            c.cphase(0.7, control, target);
            let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
            sim.run(&c, &mut rng).unwrap();
            let dense = c.simulate_dense(&mut rng);
            let f = sim.snapshot_dense().unwrap().fidelity(&dense);
            assert!(f > 1.0 - 1e-12, "c={control} t={target}: fidelity {f}");
        }
    }

    #[test]
    fn toffoli_matches_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        c.ccx(0, 5, 3);
        c.ccx(4, 2, 0);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        sim.run(&c, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        assert!(sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn swap_matches_dense() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Circuit::new(6);
        c.h(0).t(0).swap(0, 5).swap(2, 3);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        sim.run(&c, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        assert!(sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn norm_preserved_lossless() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sim = CompressedSimulator::new(8, SimConfig::default().with_block_log2(4)).unwrap();
        sim.run(&hadamard_wall(8), &mut rng).unwrap();
        assert!((sim.norm_sqr().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(sim.report().gates, 8);
        assert_eq!(sim.report().fidelity_lower_bound, 1.0);
    }

    #[test]
    fn prob_and_measurement() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let mut c = Circuit::new(6);
        c.h(0).cx(0, 5); // Bell pair across the rank boundary
        sim.run(&c, &mut rng).unwrap();
        assert!((sim.prob_one(0).unwrap() - 0.5).abs() < 1e-12);
        assert!((sim.prob_one(5).unwrap() - 0.5).abs() < 1e-12);
        let outcome = sim.measure(0, &mut rng).unwrap();
        // Entangled partner collapses identically.
        let p5 = sim.prob_one(5).unwrap();
        assert!((p5 - if outcome { 1.0 } else { 0.0 }).abs() < 1e-9);
        assert!((sim.norm_sqr().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_ladder_escalates_under_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        // Tiny budget forces lossy levels almost immediately on a
        // spread-out state.
        let cfg = SimConfig::default()
            .with_block_log2(4)
            .with_memory_budget(3 * (1u64 << 4) * 16 * 2); // ~3 scratch blocks
        let mut sim = CompressedSimulator::new(10, cfg).unwrap();
        let mut c = Circuit::new(10);
        for q in 0..10 {
            c.h(q);
        }
        for q in 0..10 {
            c.rz(0.1 + q as f64, q);
        }
        sim.run(&c, &mut rng).unwrap();
        let report = sim.report();
        assert!(report.escalations > 0, "expected ladder escalation");
        assert!(report.fidelity_lower_bound < 1.0);
        assert!(report.fidelity_lower_bound > 0.0);
    }

    #[test]
    fn lossy_state_stays_close_to_dense() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = SimConfig::default()
            .with_block_log2(4)
            .with_fixed_bound(ErrorBound::PointwiseRelative(1e-4));
        let mut sim = CompressedSimulator::new(8, cfg).unwrap();
        let mut c = Circuit::new(8);
        for q in 0..8 {
            c.h(q);
        }
        for q in 0..7 {
            c.cx(q, q + 1);
        }
        for q in 0..8 {
            c.rz(0.3 * (q + 1) as f64, q);
        }
        sim.run(&c, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        let f = sim.snapshot_dense().unwrap().fidelity(&dense);
        assert!(f > 0.999, "fidelity {f}");
        assert!(f >= sim.report().fidelity_lower_bound - 1e-9);
    }

    #[test]
    fn cache_hits_on_redundant_blocks() {
        let mut rng = StdRng::seed_from_u64(7);
        // Many identical zero blocks: a gate over the high qubit hits
        // byte-identical block pairs repeatedly.
        let cfg = SimConfig::default().with_block_log2(3);
        let mut sim = CompressedSimulator::new(9, cfg).unwrap();
        let mut c = Circuit::new(9);
        c.h(8).h(7);
        sim.run(&c, &mut rng).unwrap();
        assert!(
            sim.cache().hits() > 0,
            "expected cache hits on redundant zero blocks, misses={}",
            sim.cache().misses()
        );
        // Correctness despite caching:
        let dense = c.simulate_dense(&mut rng);
        assert!(sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn comm_accounted_only_for_rank_crossing_gates() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let mut c = Circuit::new(6);
        c.h(0); // in-block
        sim.run(&c, &mut rng).unwrap();
        assert_eq!(sim.report().bytes_exchanged, 0);
        assert_eq!(sim.report().exchanges, 0);
        let mut c2 = Circuit::new(6);
        c2.h(5); // rank bit
        sim.run(&c2, &mut rng).unwrap();
        let report = sim.report();
        assert!(report.bytes_exchanged > 0);
        assert!(report.comm_ns > 0, "exchange must cost communication time");
        // One pair of ranks, every block of the lead rank exchanged once.
        assert_eq!(report.exchanges, 4);
        assert!(report.exchanges_per_gate() > 0.0);
    }

    #[test]
    fn rank_workers_match_single_worker_amplitudewise() {
        // The same circuit on 1, 2, and 4 rank workers must produce
        // identical states: the cluster path is a pure execution change.
        let mut c = Circuit::new(8);
        for q in 0..8 {
            c.h(q);
        }
        c.t(7).cx(6, 1).cphase(0.45, 0, 7).ccx(7, 0, 4);
        let snap = |ranks_log2: u32| {
            let cfg = SimConfig::default()
                .with_block_log2(3)
                .with_ranks_log2(ranks_log2);
            let mut sim = CompressedSimulator::new(8, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            sim.run(&c, &mut rng).unwrap();
            sim.snapshot_dense().unwrap()
        };
        let (one, two, four) = (snap(0), snap(1), snap(2));
        for (a, b) in one.amplitudes().iter().zip(two.amplitudes()) {
            assert!((*a - *b).abs() < 1e-14);
        }
        for (a, b) in one.amplitudes().iter().zip(four.amplitudes()) {
            assert!((*a - *b).abs() < 1e-14);
        }
    }

    #[test]
    fn threads_per_rank_is_behavior_neutral() {
        let mut c = Circuit::new(7);
        for q in 0..7 {
            c.h(q);
        }
        c.cx(6, 0).rz(0.9, 6);
        let snap = |ranks_log2: u32, threads: Option<usize>| {
            let mut cfg = SimConfig::default()
                .with_block_log2(3)
                .with_ranks_log2(ranks_log2);
            cfg.threads_per_rank = threads;
            let mut sim = CompressedSimulator::new(7, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            sim.run(&c, &mut rng).unwrap();
            sim.snapshot_dense().unwrap()
        };
        // Cluster path (4 rank threads) and the local path's pinned pool
        // must both be bit-identical to the ambient-width run.
        let auto = snap(2, None);
        for other in [snap(2, Some(1)), snap(2, Some(4)), snap(0, Some(4))] {
            for (a, b) in auto.amplitudes().iter().zip(other.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn sample_returns_valid_indices() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let mut c = Circuit::new(6);
        c.h(0).h(3);
        sim.run(&c, &mut rng).unwrap();
        for _ in 0..50 {
            let s = sim.sample(&mut rng).unwrap();
            // Only qubits 0 and 3 are in superposition.
            assert_eq!(s & !0b001001, 0, "sampled {s:b}");
        }
    }

    #[test]
    fn z_expectations_match_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut c = Circuit::new(6);
        c.h(0).cx(0, 5).ry(0.8, 3).cx(3, 1);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        sim.run(&c, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        for q in 0..6 {
            let expect = 1.0 - 2.0 * dense.prob_one(q);
            assert!(
                (sim.expectation_z(q).unwrap() - expect).abs() < 1e-12,
                "qubit {q}"
            );
        }
        // ZZ on the Bell pair (0,5) is +1; on uncorrelated pairs it
        // factorizes.
        assert!((sim.expectation_zz(0, 5).unwrap() - 1.0).abs() < 1e-12);
        let z3 = sim.expectation_z(3).unwrap();
        let z2 = sim.expectation_z(2).unwrap();
        assert!((sim.expectation_zz(2, 3).unwrap() - z2 * z3).abs() < 1e-9);
    }

    #[test]
    fn fusion_matches_unfused_and_reduces_block_touches() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        c.t(0)
            .sx(0)
            .rz(0.3, 1)
            .ry(0.2, 1)
            .cx(1, 0)
            .cphase(0.5, 4, 2);
        c.h(2).t(2);
        let run = |fusion: bool| {
            let cfg = small_cfg().with_fusion(fusion).without_cache();
            let mut sim = CompressedSimulator::new(6, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            sim.run(&c, &mut rng).unwrap();
            let snap = sim.snapshot_dense().unwrap();
            (snap, sim.report())
        };
        let (s_on, r_on) = run(true);
        let (s_off, r_off) = run(false);
        assert!(s_on.fidelity(&s_off) > 1.0 - 1e-12);
        // Source-gate accounting is identical either way.
        assert_eq!(r_on.gates, r_off.gates);
        assert_eq!(r_on.gates, c.gate_count());
        // Fusion + batching must strictly amortize decompression cycles.
        assert!(
            r_on.breakdown.block_touches < r_off.breakdown.block_touches,
            "fused {} vs unfused {} touches",
            r_on.breakdown.block_touches,
            r_off.breakdown.block_touches
        );
        assert!(r_on.breakdown.gates_per_block_touch() > 1.0);
        assert!((r_off.breakdown.gates_per_block_touch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batched_touch_consults_cache_once_per_touch() {
        // n=6, block_log2=3, one rank -> 8 blocks. Four intra-block gates
        // form one batch: the cache must be consulted once per touched
        // block (8), not once per gate per block (32).
        let mut c = Circuit::new(6);
        c.h(0).t(1).rz(0.1, 2).h(1);
        let mut rng = StdRng::seed_from_u64(0);

        // Cache on: exactly one consult (hit or miss) per touched block.
        let cfg = SimConfig::default().with_block_log2(3).with_ranks_log2(0);
        let mut sim = CompressedSimulator::new(6, cfg).unwrap();
        sim.run(&c, &mut rng).unwrap();
        assert_eq!(
            sim.cache().hits() + sim.cache().misses(),
            8,
            "expected one cache consult per block touch"
        );

        // Cache off: every block is cycled once and carries all four gates.
        let cfg = SimConfig::default()
            .with_block_log2(3)
            .with_ranks_log2(0)
            .without_cache();
        let mut sim = CompressedSimulator::new(6, cfg).unwrap();
        sim.run(&c, &mut rng).unwrap();
        assert_eq!(sim.metrics().block_touches(), 8);
        assert_eq!(sim.metrics().batched_gate_applications(), 32);
        assert!((sim.metrics().gates_per_block_touch() - 4.0).abs() < 1e-12);
        let dense = c.simulate_dense(&mut rng);
        assert!(sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn selection_mask_keeps_cache_sound_across_identical_blocks() {
        // 16 byte-identical blocks, then a batch where a block-scope
        // control makes the applicable-gate subset differ between blocks.
        // If the selection mask were not part of the cache key, one class
        // of blocks would be served the other class's cached output.
        let cfg = SimConfig::default().with_block_log2(2).with_ranks_log2(0);
        let mut sim = CompressedSimulator::new(6, cfg).unwrap();
        let mut c = Circuit::new(6);
        c.h(2).h(3).h(4).h(5); // spread: every block holds (0.25, 0) at offset 0
        c.x(0); // fires on all 16 blocks
        c.cx(5, 1); // fires only where the qubit-5 block bit is 1
        let mut rng = StdRng::seed_from_u64(0);
        sim.run(&c, &mut rng).unwrap();
        // The last two gates form one batch over 16 byte-identical blocks
        // split into two selection classes (X-only vs X-then-CX). Any key
        // collision between the classes corrupts amplitudes.
        let dense = c.simulate_dense(&mut rng);
        assert!(
            sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12,
            "selection-mask collision corrupted the state"
        );
    }

    #[test]
    fn run_schedule_rejects_mismatched_geometry() {
        use qcs_circuits::{schedule_circuit, FusionPolicy};
        let mut c = Circuit::new(6);
        c.h(0).t(1);
        // Schedule built for 5-bit blocks; simulator uses 3-bit blocks with
        // qubit 4 routing inter-block -> batching it is a config error.
        let mut c2 = Circuit::new(6);
        c2.h(4).t(3);
        let sched = schedule_circuit(&c2, &FusionPolicy::for_block(5));
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let err = sim.run_schedule(&sched, &mut rng);
        assert!(matches!(err, Err(SimError::Config(_))), "got {err:?}");
        // The well-matched schedule runs fine.
        let sched_ok = schedule_circuit(&c, &FusionPolicy::for_block(3));
        let mut sim2 = CompressedSimulator::new(6, small_cfg()).unwrap();
        sim2.run_schedule(&sched_ok, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        assert!(sim2.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn batched_lossy_run_charges_ledger_once_per_batch() {
        let mut c = Circuit::new(6);
        c.h(0).rz(0.4, 1).ry(0.2, 2).t(0); // one 4-gate batch at block_log2=3
        let lossy = ErrorBound::PointwiseRelative(1e-4);
        let run = |fusion: bool| {
            let cfg = SimConfig::default()
                .with_block_log2(3)
                .with_fixed_bound(lossy)
                .with_fusion(fusion);
            let mut sim = CompressedSimulator::new(6, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            sim.run(&c, &mut rng).unwrap();
            (
                sim.ledger().lossy_gates(),
                sim.report().fidelity_lower_bound,
            )
        };
        let (lossy_on, bound_on) = run(true);
        let (lossy_off, bound_off) = run(false);
        assert_eq!(lossy_off, 4, "unfused: one lossy event per gate");
        assert_eq!(lossy_on, 1, "fused: one lossy event per batch");
        assert!(bound_on > bound_off);
    }

    #[test]
    fn spilled_run_matches_resident_run_bitwise() {
        // 9 qubits, 3-bit blocks, one rank -> 64 blocks; keep only 4
        // resident. The out-of-core tier must be a pure storage change.
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
        }
        c.t(0).rz(0.4, 8).cx(8, 1).cphase(0.7, 3, 6);
        let snap = |spill: Option<usize>| {
            let mut cfg = SimConfig::default().with_block_log2(3);
            if let Some(budget) = spill {
                cfg = cfg.with_spill(budget);
            }
            let mut sim = CompressedSimulator::new(9, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            sim.run(&c, &mut rng).unwrap();
            (sim.snapshot_dense().unwrap(), sim.report())
        };
        let (resident, r_mem) = snap(None);
        let (spilled, r_spill) = snap(Some(4));
        for (a, b) in resident.amplitudes().iter().zip(spilled.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(r_mem.spills, 0, "all-resident run must not spill");
        assert!(r_spill.spills > 0, "budgeted run must spill");
        assert!(r_spill.fetches > 0, "budgeted run must fetch");
        assert!(r_spill.spill_bytes > 0 && r_spill.fetch_bytes > 0);
        assert!(r_spill.spill_io_ns > 0, "spill i/o must cost time");
    }

    #[test]
    fn spill_caps_resident_memory() {
        let cfg = SimConfig::default().with_block_log2(3).with_spill(2);
        let mut sim = CompressedSimulator::new(9, cfg).unwrap();
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
        }
        let mut rng = StdRng::seed_from_u64(1);
        sim.run(&c, &mut rng).unwrap();
        // 64 equal-sized nonzero blocks, 2 resident: resident bytes must
        // be a small fraction of the full compressed footprint, and Eq. 8
        // memory accounting must charge only the resident share.
        assert!(sim.resident_bytes() * 8 < sim.compressed_bytes());
        let scratch = 2 * (sim.layout().block_amps() as u64) * 16;
        assert_eq!(sim.memory_bytes(), sim.resident_bytes() + scratch);
        // Without the background pipelines the deterministic escalation
        // quantity and the honest footprint coincide.
        assert_eq!(sim.hot_memory_bytes(), sim.memory_bytes());
    }

    #[test]
    fn spilled_cluster_run_matches_and_exchanges() {
        // 2 rank workers, each with a 2-block residency budget: the
        // compressed exchange must compose with the out-of-core tier.
        let mut c = Circuit::new(8);
        for q in 0..8 {
            c.h(q);
        }
        c.cx(7, 0).t(7).cphase(0.3, 0, 7);
        let run = |spill: bool| {
            let mut cfg = SimConfig::default().with_block_log2(3).with_ranks_log2(1);
            if spill {
                cfg = cfg.with_spill(2);
            }
            let mut sim = CompressedSimulator::new(8, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            sim.run(&c, &mut rng).unwrap();
            (sim.snapshot_dense().unwrap(), sim.report())
        };
        let (mem, _) = run(false);
        let (spilled, report) = run(true);
        for (a, b) in mem.amplitudes().iter().zip(spilled.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert!(report.spills > 0);
        assert!(report.exchanges > 0, "rank-crossing gates must exchange");
    }

    #[test]
    fn spill_config_validation() {
        let cfg = SimConfig::default().with_block_log2(3).with_spill(0);
        assert!(matches!(
            CompressedSimulator::new(9, cfg),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn grover_end_to_end_compressed() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 8;
        let target = 0b1011_0101 & ((1 << n) - 1);
        let c = qcs_circuits::grover_circuit(n, target, qcs_circuits::optimal_iterations(n));
        let cfg = SimConfig::default().with_block_log2(4).with_ranks_log2(1);
        let mut sim = CompressedSimulator::new(n as u32, cfg).unwrap();
        sim.run(&c, &mut rng).unwrap();
        let sv = sim.snapshot_dense().unwrap();
        let p = sv.probabilities()[target as usize];
        assert!(p > 0.95, "grover success probability {p}");
        // Structured circuit: compression ratio should be comfortably > 1.
        assert!(sim.report().min_compression_ratio > 1.0);
    }
}
