//! The compressed-block full-state simulator (paper §3).
//!
//! The state vector is divided over simulated MPI ranks and, within each
//! rank, into blocks stored compressed in memory (Fig. 2). A gate on target
//! qubit `q` decompresses at most two blocks at a time into scratch buffers
//! (the MCDRAM stand-in), applies the pair update of Eq. 6/7, recompresses,
//! and moves on. Routing between the three cases of §3.3 (intra-block,
//! intra-rank, inter-rank) is delegated to [`qcs_cluster::Layout`].
//!
//! The hybrid adaptive pipeline of §3.7 runs lossless (`qzstd`) until the
//! memory budget (Eq. 8) is exceeded, then walks the error-bound ladder,
//! recording fidelity ledger entries per Eq. 11. The compressed-block cache
//! of §3.4 skips decompress-compute-compress cycles entirely when the same
//! gate hits byte-identical blocks.
//!
//! # The batch scheduler
//!
//! By default (`SimConfig::fusion`), circuits are first rewritten by the
//! batch scheduler in [`qcs_circuits::schedule`]: runs of consecutive
//! single-qubit gates on the same qubit fuse into one matrix, and runs of
//! gates whose targets all route intra-block (§3.3 case (a)) group into
//! [`GateBatch`]es. [`CompressedSimulator::apply_batch`] then fills each
//! worker's scratch once per *batch*, applies every member gate to the
//! decompressed amplitudes, and recompresses once — amortizing the
//! decompress/recompress cycle that dominates Table 2 across the whole
//! batch. Because a batched recompression is a single lossy event, the
//! fidelity ledger also charges one `delta` per batch instead of one per
//! gate.
//!
//! Cache soundness: a batch's cache key is its schedule-level signature
//! mixed with the per-block *selection mask* (which member gates actually
//! fire on that block, given block/rank-scope controls), so two blocks with
//! identical bytes but different applicable-gate subsets can never share a
//! cache line. Each block touch consults the cache exactly once per batch,
//! not once per member gate.

use crate::block::{BlockCodec, CompressedBlock};
use crate::cache::BlockCache;
use crate::config::SimConfig;
use crate::fidelity_bound::FidelityLedger;
use qcs_circuits::schedule::mix;
use qcs_circuits::{schedule_circuit, Circuit, GateBatch, Op, Schedule, ScheduledOp};
use qcs_cluster::{ControlScope, Layout, Metrics, Phase, Route, TimeBreakdown};
use qcs_compress::ErrorBound;
use qcs_statevec::{kernels, Complex64, Gate1, StateVector};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by the compressed simulator.
#[derive(Debug)]
pub enum SimError {
    /// Configuration failed validation.
    Config(String),
    /// A codec failed; indicates corruption or an internal bug.
    Codec(qcs_compress::CodecError),
    /// Checkpoint I/O or format problems.
    Checkpoint(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(m) => write!(f, "configuration error: {m}"),
            SimError::Codec(e) => write!(f, "codec error: {e}"),
            SimError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<qcs_compress::CodecError> for SimError {
    fn from(e: qcs_compress::CodecError) -> Self {
        SimError::Codec(e)
    }
}

/// Summary statistics of a finished (or in-progress) simulation, matching
/// the rows of the paper's Table 2.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Qubit count.
    pub num_qubits: u32,
    /// Gates applied so far.
    pub gates: usize,
    /// Wall-clock time in gate processing.
    pub wall_time: Duration,
    /// Per-phase breakdown (compression/decompression/communication/
    /// computation).
    pub breakdown: TimeBreakdown,
    /// Lower bound on fidelity per Eq. 11.
    pub fidelity_lower_bound: f64,
    /// The ladder level currently in force.
    pub current_bound: ErrorBound,
    /// Number of ladder escalations that occurred.
    pub escalations: u64,
    /// Minimum compression ratio observed during the run (Table 2 last row).
    pub min_compression_ratio: f64,
    /// Peak Eq. 8 memory usage in bytes.
    pub peak_memory_bytes: u64,
    /// `2^{n+4}`: what the uncompressed simulation would need.
    pub uncompressed_bytes: u128,
    /// Compressed-block cache hits.
    pub cache_hits: u64,
    /// Compressed-block cache misses.
    pub cache_misses: u64,
    /// Bytes exchanged between simulated ranks.
    pub comm_bytes: u64,
}

impl SimReport {
    /// Seconds per gate (Table 2 "Time per Gate" row).
    pub fn time_per_gate(&self) -> f64 {
        if self.gates == 0 {
            0.0
        } else {
            self.wall_time.as_secs_f64() / self.gates as f64
        }
    }
}

/// One work unit: a single block, or a pair of blocks whose amplitudes are
/// gate partners.
struct Unit {
    slot_a: usize,
    slot_b: Option<usize>,
    in_a: CompressedBlock,
    in_b: Option<CompressedBlock>,
    /// Inter-rank pair: account exchanged bytes as communication.
    cross_rank: bool,
}

struct UnitOut {
    slot_a: usize,
    slot_b: Option<usize>,
    out_a: CompressedBlock,
    out_b: Option<CompressedBlock>,
    timings: [Duration; 4],
    comm_bytes: u64,
    compressed_lossy: bool,
    /// False when the block cache answered and no cycle ran.
    cache_hit: bool,
    /// Gate kernels applied during the cycle (0 on a cache hit).
    gates_applied: u64,
}

/// The compressed-state simulator.
pub struct CompressedSimulator {
    cfg: SimConfig,
    layout: Layout,
    codec: Arc<BlockCodec>,
    /// Rank-major flat block storage: index = rank * blocks_per_rank + block.
    blocks: Vec<Option<CompressedBlock>>,
    level: usize,
    metrics: Metrics,
    cache: Arc<BlockCache>,
    ledger: FidelityLedger,
    min_ratio: f64,
    peak_memory: u64,
    escalations: u64,
    gates_applied: usize,
    wall_time: Duration,
}

impl CompressedSimulator {
    /// Initialize `|0...0>` on `num_qubits` qubits.
    pub fn new(num_qubits: u32, cfg: SimConfig) -> Result<Self, SimError> {
        cfg.validate(num_qubits).map_err(SimError::Config)?;
        let layout = Layout::new(num_qubits, cfg.ranks_log2, cfg.block_log2);
        let codec = Arc::new(BlockCodec::new(cfg.lossy_codec));
        let total_blocks = layout.ranks() * layout.blocks_per_rank();
        let block_f64s = layout.block_amps() * 2;

        // All blocks are zero except block 0 of rank 0.
        let zeros = vec![0.0f64; block_f64s];
        let zero_block = codec.compress(&zeros, cfg.ladder[0])?;
        let mut first = zeros.clone();
        first[0] = 1.0; // amplitude |0...0> = 1 + 0i
        let first_block = codec.compress(&first, cfg.ladder[0])?;

        let mut blocks = Vec::with_capacity(total_blocks);
        blocks.push(Some(first_block));
        for _ in 1..total_blocks {
            blocks.push(Some(zero_block.clone()));
        }

        let cache = Arc::new(BlockCache::new(
            cfg.cache_lines,
            cfg.cache_auto_disable_after,
        ));
        let mut sim = Self {
            cfg,
            layout,
            codec,
            blocks,
            level: 0,
            metrics: Metrics::new(),
            cache,
            ledger: FidelityLedger::new(),
            min_ratio: f64::INFINITY,
            peak_memory: 0,
            escalations: 0,
            gates_applied: 0,
            wall_time: Duration::ZERO,
        };
        sim.note_memory();
        Ok(sim)
    }

    /// The layout in force.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Qubit count.
    pub fn num_qubits(&self) -> u32 {
        self.layout.num_qubits
    }

    /// Current ladder bound.
    pub fn current_bound(&self) -> ErrorBound {
        self.cfg.ladder[self.level]
    }

    /// Sum of compressed block sizes.
    pub fn compressed_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.as_ref().map(|b| b.len() as u64).unwrap_or(0))
            .sum()
    }

    /// Eq. 8 memory accounting: compressed blocks plus two decompression
    /// scratch buffers per rank.
    pub fn memory_bytes(&self) -> u64 {
        let scratch = 2 * (self.layout.block_amps() as u64) * 16;
        self.compressed_bytes() + self.layout.ranks() as u64 * scratch
    }

    /// Current compression ratio: uncompressed state bytes over compressed
    /// block bytes.
    pub fn compression_ratio(&self) -> f64 {
        self.layout.uncompressed_bytes() as f64 / self.compressed_bytes().max(1) as f64
    }

    fn note_memory(&mut self) {
        let mem = self.memory_bytes();
        if mem > self.peak_memory {
            self.peak_memory = mem;
        }
        let ratio = self.compression_ratio();
        if ratio < self.min_ratio {
            self.min_ratio = ratio;
        }
    }

    /// Run a full circuit. `rng` drives intermediate measurements.
    ///
    /// When [`SimConfig::fusion`] is on (the default) the circuit first
    /// passes through the batch scheduler; disable it to execute gate by
    /// gate exactly as written.
    pub fn run(&mut self, circuit: &Circuit, rng: &mut impl rand::Rng) -> Result<(), SimError> {
        assert_eq!(circuit.num_qubits() as u32, self.layout.num_qubits);
        if self.cfg.fusion {
            let schedule = schedule_circuit(circuit, &self.cfg.fusion_policy());
            self.run_schedule(&schedule, rng)
        } else {
            for op in circuit.ops() {
                self.apply_op(op, rng)?;
            }
            Ok(())
        }
    }

    /// Run a pre-built [`Schedule`] (e.g. one reused across shots).
    ///
    /// The schedule must have been produced for this simulator's block
    /// geometry: a batch whose target does not route intra-block is a
    /// configuration error.
    pub fn run_schedule(
        &mut self,
        schedule: &Schedule,
        rng: &mut impl rand::Rng,
    ) -> Result<(), SimError> {
        assert_eq!(schedule.num_qubits() as u32, self.layout.num_qubits);
        for item in schedule.items() {
            match item {
                ScheduledOp::Batch(batch) => self.apply_batch(batch)?,
                ScheduledOp::Gate(g) => {
                    let start = Instant::now();
                    self.apply_unitary(g.signature, &g.op.gate, &g.op.controls, g.op.target)?;
                    self.gates_applied += g.src_len;
                    self.wall_time += start.elapsed();
                    self.after_gate()?;
                }
                ScheduledOp::Bare { op, .. } => self.apply_op(op, rng)?,
            }
        }
        Ok(())
    }

    /// Apply one operation.
    pub fn apply_op(&mut self, op: &Op, rng: &mut impl rand::Rng) -> Result<(), SimError> {
        let start = Instant::now();
        match op {
            Op::Single { gate, target } => {
                self.apply_unitary(op.signature(), &gate.matrix(), &[], *target)?;
            }
            Op::Controlled {
                gate,
                control,
                target,
            } => {
                self.apply_unitary(op.signature(), &gate.matrix(), &[*control], *target)?;
            }
            Op::MultiControlled {
                gate,
                controls,
                target,
            } => {
                self.apply_unitary(op.signature(), &gate.matrix(), controls, *target)?;
            }
            Op::Swap { a, b } => {
                // SWAP = CX(a,b) CX(b,a) CX(a,b); counted as one gate.
                let x = Gate1::x();
                self.apply_unitary(op.signature() ^ 1, &x, &[*a], *b)?;
                self.apply_unitary(op.signature() ^ 2, &x, &[*b], *a)?;
                self.apply_unitary(op.signature() ^ 3, &x, &[*a], *b)?;
            }
            Op::Measure { target } => {
                self.measure(*target, rng)?;
            }
        }
        self.gates_applied += 1;
        self.wall_time += start.elapsed();
        self.after_gate()
    }

    /// Post-gate epilogue: walk the adaptive ladder (§3.7) while over
    /// budget, then refresh the memory/ratio watermarks.
    fn after_gate(&mut self) -> Result<(), SimError> {
        if let Some(budget) = self.cfg.memory_budget {
            while self.memory_bytes() > budget && self.level + 1 < self.cfg.ladder.len() {
                self.level += 1;
                self.escalations += 1;
                if self.cfg.recompress_on_escalate {
                    self.recompress_all()?;
                }
            }
        }
        self.note_memory();
        Ok(())
    }

    /// Apply a (multi-)controlled single-qubit unitary.
    fn apply_unitary(
        &mut self,
        op_signature: u64,
        gate: &Gate1,
        controls: &[usize],
        target: usize,
    ) -> Result<(), SimError> {
        let layout = self.layout;
        let bpr = layout.blocks_per_rank();

        // Partition control qubits by scope (§3.3).
        let mut offset_cmask = 0usize;
        let mut block_cmask = 0usize;
        let mut rank_cmask = 0usize;
        for &c in controls {
            match layout.control_scope(c as u32) {
                ControlScope::InBlock { offset_bit } => offset_cmask |= 1 << offset_bit,
                ControlScope::BlockSelect { block_bit } => block_cmask |= 1 << block_bit,
                ControlScope::RankSelect { rank_bit } => rank_cmask |= 1 << rank_bit,
            }
        }

        let rank_ok = |r: usize| r & rank_cmask == rank_cmask;
        let block_ok = |b: usize| b & block_cmask == block_cmask;

        // Assemble work units per the routing case.
        let mut units = Vec::new();
        match layout.route(target as u32) {
            Route::InBlock { offset_bit } => {
                for r in 0..layout.ranks() {
                    if !rank_ok(r) {
                        continue;
                    }
                    for b in 0..bpr {
                        if !block_ok(b) {
                            continue;
                        }
                        let slot = r * bpr + b;
                        units.push(Unit {
                            slot_a: slot,
                            slot_b: None,
                            in_a: self.blocks[slot].take().expect("block present"),
                            in_b: None,
                            cross_rank: false,
                        });
                    }
                }
                self.process_units(
                    units,
                    Kernel::InBlock { offset_bit },
                    gate,
                    offset_cmask,
                    op_signature,
                )
            }
            Route::InterBlock { block_stride } => {
                for r in 0..layout.ranks() {
                    if !rank_ok(r) {
                        continue;
                    }
                    for b in 0..bpr {
                        let tbit = block_stride;
                        if b & tbit != 0 || !block_ok(b) {
                            continue;
                        }
                        let (s0, s1) = (r * bpr + b, r * bpr + (b | tbit));
                        units.push(Unit {
                            slot_a: s0,
                            slot_b: Some(s1),
                            in_a: self.blocks[s0].take().expect("block present"),
                            in_b: Some(self.blocks[s1].take().expect("block present")),
                            cross_rank: false,
                        });
                    }
                }
                self.process_units(units, Kernel::Cross, gate, offset_cmask, op_signature)
            }
            Route::InterRank { rank_stride } => {
                for r in 0..layout.ranks() {
                    if r & rank_stride != 0 || !rank_ok(r) {
                        continue;
                    }
                    let r2 = r | rank_stride;
                    for b in 0..bpr {
                        if !block_ok(b) {
                            continue;
                        }
                        let (s0, s1) = (r * bpr + b, r2 * bpr + b);
                        units.push(Unit {
                            slot_a: s0,
                            slot_b: Some(s1),
                            in_a: self.blocks[s0].take().expect("block present"),
                            in_b: Some(self.blocks[s1].take().expect("block present")),
                            cross_rank: true,
                        });
                    }
                }
                self.process_units(units, Kernel::Cross, gate, offset_cmask, op_signature)
            }
        }
    }

    /// Apply a [`GateBatch`]: every member gate targets an intra-block
    /// qubit, so each block is decompressed once, all applicable gates run
    /// over the scratch, and the block is recompressed once.
    ///
    /// Block/rank-scope controls are honored through a per-block *selection
    /// mask*: member gate `i` fires on a block only when the block's rank
    /// and block index bits cover the gate's control masks. The mask is
    /// mixed into the cache key, and blocks no gate selects are skipped
    /// outright (no touch, no cache traffic).
    pub fn apply_batch(&mut self, batch: &GateBatch) -> Result<(), SimError> {
        let start = Instant::now();
        let layout = self.layout;
        let bpr = layout.blocks_per_rank();

        // Precompute per-gate kernels and control masks.
        let mut plans = Vec::with_capacity(batch.len());
        for fg in batch.gates() {
            let offset_bit = match layout.route(fg.op.target as u32) {
                Route::InBlock { offset_bit } => offset_bit,
                other => {
                    return Err(SimError::Config(format!(
                        "batched target {} routes {other:?}; schedule was built \
                         for a different block geometry",
                        fg.op.target
                    )))
                }
            };
            let (mut offset_cmask, mut block_cmask, mut rank_cmask) = (0usize, 0usize, 0usize);
            for &c in &fg.op.controls {
                match layout.control_scope(c as u32) {
                    ControlScope::InBlock { offset_bit } => offset_cmask |= 1 << offset_bit,
                    ControlScope::BlockSelect { block_bit } => block_cmask |= 1 << block_bit,
                    ControlScope::RankSelect { rank_bit } => rank_cmask |= 1 << rank_bit,
                }
            }
            plans.push(BatchPlan {
                gate: fg.op.gate,
                offset_bit,
                offset_cmask,
                block_cmask,
                rank_cmask,
            });
        }

        // One unit per block some gate selects.
        let mut units = Vec::new();
        for r in 0..layout.ranks() {
            for b in 0..bpr {
                let mut mask = 0u64;
                for (i, p) in plans.iter().enumerate() {
                    if r & p.rank_cmask == p.rank_cmask && b & p.block_cmask == p.block_cmask {
                        mask |= 1 << i;
                    }
                }
                if mask == 0 {
                    continue;
                }
                let slot = r * bpr + b;
                units.push(BatchUnit {
                    slot,
                    mask,
                    block: self.blocks[slot].take().expect("block present"),
                });
            }
        }

        let bound = self.cfg.ladder[self.level];
        let codec = Arc::clone(&self.codec);
        let cache = Arc::clone(&self.cache);
        let block_f64s = self.layout.block_amps() * 2;
        let batch_signature = batch.signature();

        let results: Result<Vec<UnitOut>, SimError> = units
            .into_par_iter()
            .map_init(
                || Vec::with_capacity(block_f64s),
                |buf, unit| {
                    process_batch_unit(&codec, &cache, &plans, batch_signature, bound, unit, buf)
                },
            )
            .collect();
        self.merge_unit_outputs(results?, bound)?;
        self.gates_applied += batch.source_gate_count();
        self.wall_time += start.elapsed();
        self.after_gate()
    }

    /// Decompress, compute, recompress every unit (in parallel), honoring
    /// the compressed-block cache, then write results back.
    fn process_units(
        &mut self,
        units: Vec<Unit>,
        kernel: Kernel,
        gate: &Gate1,
        offset_cmask: usize,
        op_signature: u64,
    ) -> Result<(), SimError> {
        let bound = self.cfg.ladder[self.level];
        let codec = Arc::clone(&self.codec);
        let cache = Arc::clone(&self.cache);
        let block_f64s = self.layout.block_amps() * 2;
        let g = *gate;

        let results: Result<Vec<UnitOut>, SimError> = units
            .into_par_iter()
            .map_init(
                // Per-worker scratch: the two decompressed blocks the paper
                // holds in MCDRAM (§3.2).
                || {
                    (
                        Vec::with_capacity(block_f64s),
                        Vec::with_capacity(block_f64s),
                    )
                },
                |(buf_a, buf_b), unit| {
                    process_one(
                        &codec,
                        &cache,
                        &g,
                        kernel,
                        offset_cmask,
                        op_signature,
                        bound,
                        unit,
                        buf_a,
                        buf_b,
                    )
                },
            )
            .collect();
        self.merge_unit_outputs(results?, bound)
    }

    /// Write unit results back into block storage, fold their timings and
    /// touch counts into the metrics, and charge the fidelity ledger once
    /// for the whole wave (one compression event per gate *or* batch).
    fn merge_unit_outputs(
        &mut self,
        results: Vec<UnitOut>,
        bound: ErrorBound,
    ) -> Result<(), SimError> {
        let mut any_lossy = false;
        for out in results {
            self.metrics.add(Phase::Compression, out.timings[0]);
            self.metrics.add(Phase::Decompression, out.timings[1]);
            self.metrics.add(Phase::Communication, out.timings[2]);
            self.metrics.add(Phase::Computation, out.timings[3]);
            if out.comm_bytes > 0 {
                self.metrics.add_comm_bytes(out.comm_bytes);
                if let Some(bw) = self.cfg.modeled_link_bandwidth {
                    self.metrics.add(
                        Phase::Communication,
                        Duration::from_secs_f64(out.comm_bytes as f64 / bw),
                    );
                }
            }
            if !out.cache_hit {
                self.metrics.add_block_touch(out.gates_applied);
            }
            any_lossy |= out.compressed_lossy;
            self.blocks[out.slot_a] = Some(out.out_a);
            if let Some(sb) = out.slot_b {
                self.blocks[sb] = Some(out.out_b.expect("pair output"));
            }
        }
        self.ledger
            .record_gate(if any_lossy { bound.magnitude() } else { 0.0 });
        Ok(())
    }

    /// Recompress every block at the current ladder level (used after an
    /// escalation so the budget is actually enforced).
    fn recompress_all(&mut self) -> Result<(), SimError> {
        let bound = self.cfg.ladder[self.level];
        let codec = Arc::clone(&self.codec);
        let blocks = std::mem::take(&mut self.blocks);
        let results: Result<Vec<Option<CompressedBlock>>, SimError> = blocks
            .into_par_iter()
            .map(|b| match b {
                None => Ok(None),
                Some(blk) => {
                    let mut buf = Vec::new();
                    codec.decompress(&blk, &mut buf)?;
                    Ok(Some(codec.compress(&buf, bound)?))
                }
            })
            .collect();
        self.blocks = results?;
        if bound.is_lossy() {
            // The recompression pass is itself a lossy compression event.
            self.ledger.record_gate(bound.magnitude());
        }
        Ok(())
    }

    /// Probability that `qubit` reads `|1>`.
    pub fn prob_one(&self, qubit: usize) -> Result<f64, SimError> {
        let layout = self.layout;
        let bpr = layout.blocks_per_rank();
        let codec = Arc::clone(&self.codec);
        let scope = layout.control_scope(qubit as u32);
        let total: Result<Vec<f64>, SimError> = self
            .blocks
            .par_iter()
            .enumerate()
            .map(|(slot, blk)| {
                let blk = blk.as_ref().expect("block present");
                let (r, b) = (slot / bpr, slot % bpr);
                let selected_whole = match scope {
                    ControlScope::InBlock { .. } => None,
                    ControlScope::BlockSelect { block_bit } => Some(b >> block_bit & 1 == 1),
                    ControlScope::RankSelect { rank_bit } => Some(r >> rank_bit & 1 == 1),
                };
                if selected_whole == Some(false) {
                    return Ok(0.0);
                }
                let mut buf = Vec::new();
                codec.decompress(blk, &mut buf)?;
                let sum = match scope {
                    ControlScope::InBlock { offset_bit } => {
                        let bit = 1usize << offset_bit;
                        (0..buf.len() / 2)
                            .filter(|o| o & bit != 0)
                            .map(|o| buf[2 * o] * buf[2 * o] + buf[2 * o + 1] * buf[2 * o + 1])
                            .sum()
                    }
                    _ => buf.iter().map(|v| v * v).sum(),
                };
                Ok(sum)
            })
            .collect();
        Ok(total?.into_iter().sum())
    }

    /// Measure `qubit`, collapsing the state (intermediate measurement,
    /// the capability §1 argues full-state simulation enables).
    pub fn measure(&mut self, qubit: usize, rng: &mut impl rand::Rng) -> Result<bool, SimError> {
        let p1 = self.prob_one(qubit)?;
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(qubit, outcome, if outcome { p1 } else { 1.0 - p1 })?;
        Ok(outcome)
    }

    /// Collapse `qubit` to `outcome` with prior probability `p`.
    fn collapse(&mut self, qubit: usize, outcome: bool, p: f64) -> Result<(), SimError> {
        assert!(p > 0.0, "collapse onto zero-probability outcome");
        let layout = self.layout;
        let bpr = layout.blocks_per_rank();
        let codec = Arc::clone(&self.codec);
        let bound = self.cfg.ladder[self.level];
        let scope = layout.control_scope(qubit as u32);
        let scale = 1.0 / p.sqrt();
        let blocks = std::mem::take(&mut self.blocks);
        let results: Result<Vec<Option<CompressedBlock>>, SimError> = blocks
            .into_par_iter()
            .enumerate()
            .map(|(slot, blk)| {
                let blk = blk.expect("block present");
                let (r, b) = (slot / bpr, slot % bpr);
                let mut buf = Vec::new();
                codec.decompress(&blk, &mut buf)?;
                match scope {
                    ControlScope::InBlock { offset_bit } => {
                        let bit = 1usize << offset_bit;
                        for o in 0..buf.len() / 2 {
                            if (o & bit != 0) == outcome {
                                buf[2 * o] *= scale;
                                buf[2 * o + 1] *= scale;
                            } else {
                                buf[2 * o] = 0.0;
                                buf[2 * o + 1] = 0.0;
                            }
                        }
                    }
                    ControlScope::BlockSelect { block_bit } => {
                        if (b >> block_bit & 1 == 1) == outcome {
                            for v in buf.iter_mut() {
                                *v *= scale;
                            }
                        } else {
                            buf.iter_mut().for_each(|v| *v = 0.0);
                        }
                    }
                    ControlScope::RankSelect { rank_bit } => {
                        if (r >> rank_bit & 1 == 1) == outcome {
                            for v in buf.iter_mut() {
                                *v *= scale;
                            }
                        } else {
                            buf.iter_mut().for_each(|v| *v = 0.0);
                        }
                    }
                }
                Ok(Some(codec.compress(&buf, bound)?))
            })
            .collect();
        self.blocks = results?;
        if bound.is_lossy() {
            self.ledger.record_gate(bound.magnitude());
        }
        Ok(())
    }

    /// Squared 2-norm of the stored state (1 up to compression error).
    pub fn norm_sqr(&self) -> Result<f64, SimError> {
        let codec = Arc::clone(&self.codec);
        let sums: Result<Vec<f64>, SimError> = self
            .blocks
            .par_iter()
            .map(|blk| {
                let mut buf = Vec::new();
                codec.decompress(blk.as_ref().expect("block present"), &mut buf)?;
                Ok(buf.iter().map(|v| v * v).sum())
            })
            .collect();
        Ok(sums?.into_iter().sum())
    }

    /// Decompress the full state into a dense [`StateVector`].
    ///
    /// Only sensible for small `n`; used by tests, fidelity measurement and
    /// the benchmark harness.
    pub fn snapshot_dense(&self) -> Result<StateVector, SimError> {
        let layout = self.layout;
        let mut amps = vec![Complex64::ZERO; layout.total_amps() as usize];
        let bpr = layout.blocks_per_rank();
        let mut buf = Vec::new();
        for (slot, blk) in self.blocks.iter().enumerate() {
            let (r, b) = (slot / bpr, slot % bpr);
            self.codec
                .decompress(blk.as_ref().expect("block present"), &mut buf)?;
            let base = layout.join(r, b, 0) as usize;
            for o in 0..layout.block_amps() {
                amps[base + o] = Complex64::new(buf[2 * o], buf[2 * o + 1]);
            }
        }
        Ok(StateVector::from_amplitudes(amps))
    }

    /// Flat interleaved (re, im) dump of the state. Used by the benchmark
    /// harness to produce compressor workloads (`qaoa_36`/`sup_36`-style
    /// snapshots).
    pub fn snapshot_f64(&self) -> Result<Vec<f64>, SimError> {
        let sv = self.snapshot_dense()?;
        Ok(sv.as_f64_slice().to_vec())
    }

    /// Sample one basis-state index from the current distribution.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> Result<u64, SimError> {
        let layout = self.layout;
        let bpr = layout.blocks_per_rank();
        // Two-pass: block weights, then within the chosen block.
        let codec = Arc::clone(&self.codec);
        let weights: Result<Vec<f64>, SimError> = self
            .blocks
            .par_iter()
            .map(|blk| {
                let mut buf = Vec::new();
                codec.decompress(blk.as_ref().expect("block present"), &mut buf)?;
                Ok(buf.iter().map(|v| v * v).sum())
            })
            .collect();
        let weights = weights?;
        let total: f64 = weights.iter().sum();
        let mut r = rng.gen::<f64>() * total;
        let mut slot = weights.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if r < *w {
                slot = i;
                break;
            }
            r -= w;
        }
        let mut buf = Vec::new();
        self.codec
            .decompress(self.blocks[slot].as_ref().expect("block present"), &mut buf)?;
        let mut o = layout.block_amps() - 1;
        for i in 0..layout.block_amps() {
            let w = buf[2 * i] * buf[2 * i] + buf[2 * i + 1] * buf[2 * i + 1];
            if r < w {
                o = i;
                break;
            }
            r -= w;
        }
        Ok(layout.join(slot / bpr, slot % bpr, o))
    }

    /// Expectation value of `Z` on `qubit`: `P(0) - P(1)`.
    pub fn expectation_z(&self, qubit: usize) -> Result<f64, SimError> {
        Ok(1.0 - 2.0 * self.prob_one(qubit)?)
    }

    /// Expectation value of `Z_a Z_b` (the MAXCUT cost term), computed in
    /// one blockwise pass without decompressing the full state at once.
    pub fn expectation_zz(&self, a: usize, b: usize) -> Result<f64, SimError> {
        assert!(a != b, "zz needs distinct qubits");
        let layout = self.layout;
        assert!(a < layout.num_qubits as usize && b < layout.num_qubits as usize);
        let bpr = layout.blocks_per_rank();
        let codec = Arc::clone(&self.codec);
        let terms: Result<Vec<f64>, SimError> = self
            .blocks
            .par_iter()
            .enumerate()
            .map(|(slot, blk)| {
                let (r, bidx) = (slot / bpr, slot % bpr);
                let base = layout.join(r, bidx, 0);
                let mut buf = Vec::new();
                codec.decompress(blk.as_ref().expect("block present"), &mut buf)?;
                let mut acc = 0.0;
                for o in 0..buf.len() / 2 {
                    let idx = base + o as u64;
                    let parity = ((idx >> a) & 1) ^ ((idx >> b) & 1);
                    let w = buf[2 * o] * buf[2 * o] + buf[2 * o + 1] * buf[2 * o + 1];
                    acc += if parity == 0 { w } else { -w };
                }
                Ok(acc)
            })
            .collect();
        Ok(terms?.into_iter().sum())
    }

    /// Progress/result report (Table 2 rows).
    pub fn report(&self) -> SimReport {
        SimReport {
            num_qubits: self.layout.num_qubits,
            gates: self.gates_applied,
            wall_time: self.wall_time,
            breakdown: self.metrics.breakdown(),
            fidelity_lower_bound: self.ledger.lower_bound(),
            current_bound: self.current_bound(),
            escalations: self.escalations,
            min_compression_ratio: if self.min_ratio.is_finite() {
                self.min_ratio
            } else {
                self.compression_ratio()
            },
            peak_memory_bytes: self.peak_memory,
            uncompressed_bytes: self.layout.uncompressed_bytes(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            comm_bytes: self.metrics.comm_bytes(),
        }
    }

    /// The fidelity ledger.
    pub fn ledger(&self) -> &FidelityLedger {
        &self.ledger
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The block cache (for hit-rate inspection).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    // --- checkpoint support (fields exposed to the checkpoint module) ---

    pub(crate) fn checkpoint_parts(
        &self,
    ) -> (
        &SimConfig,
        Layout,
        usize,
        &FidelityLedger,
        &[Option<CompressedBlock>],
    ) {
        (
            &self.cfg,
            self.layout,
            self.level,
            &self.ledger,
            &self.blocks,
        )
    }

    pub(crate) fn from_checkpoint_parts(
        cfg: SimConfig,
        level: usize,
        ledger: FidelityLedger,
        blocks: Vec<Option<CompressedBlock>>,
        num_qubits: u32,
    ) -> Result<Self, SimError> {
        cfg.validate(num_qubits).map_err(SimError::Config)?;
        let layout = Layout::new(num_qubits, cfg.ranks_log2, cfg.block_log2);
        if blocks.len() != layout.ranks() * layout.blocks_per_rank() {
            return Err(SimError::Checkpoint("block count mismatch".into()));
        }
        if level >= cfg.ladder.len() {
            return Err(SimError::Checkpoint("ladder level out of range".into()));
        }
        let codec = Arc::new(BlockCodec::new(cfg.lossy_codec));
        let cache = Arc::new(BlockCache::new(
            cfg.cache_lines,
            cfg.cache_auto_disable_after,
        ));
        let mut sim = Self {
            cfg,
            layout,
            codec,
            blocks,
            level,
            metrics: Metrics::new(),
            cache,
            ledger,
            min_ratio: f64::INFINITY,
            peak_memory: 0,
            escalations: 0,
            gates_applied: 0,
            wall_time: Duration::ZERO,
        };
        sim.note_memory();
        Ok(sim)
    }
}

/// Which pair-update kernel a unit runs.
#[derive(Debug, Clone, Copy)]
enum Kernel {
    /// Pairs within one block, differing at `offset_bit`.
    InBlock { offset_bit: u32 },
    /// Pairs across two blocks at the same offset.
    Cross,
}

#[allow(clippy::too_many_arguments)]
fn process_one(
    codec: &BlockCodec,
    cache: &BlockCache,
    gate: &Gate1,
    kernel: Kernel,
    offset_cmask: usize,
    op_signature: u64,
    bound: ErrorBound,
    unit: Unit,
    buf_a: &mut Vec<f64>,
    buf_b: &mut Vec<f64>,
) -> Result<UnitOut, SimError> {
    let mut timings = [Duration::ZERO; 4];
    let comm_bytes = if unit.cross_rank {
        // Model the MPI exchange: the compressed blocks cross the network in
        // both directions. The copy below stands in for the transfer.
        let t = Instant::now();
        let moved: Vec<u8> = unit
            .in_b
            .as_ref()
            .map(|b| b.bytes.to_vec())
            .unwrap_or_default();
        let back: Vec<u8> = unit.in_a.bytes.to_vec();
        timings[2] += t.elapsed();
        (moved.len() + back.len()) as u64
    } else {
        0
    };

    // Cache lookup (§3.4): skips decompress + compute + compress.
    if let Some((out_a, out_b)) = cache.lookup(op_signature, &unit.in_a, unit.in_b.as_ref()) {
        return Ok(UnitOut {
            slot_a: unit.slot_a,
            slot_b: unit.slot_b,
            out_a,
            out_b,
            timings,
            comm_bytes,
            compressed_lossy: false,
            cache_hit: true,
            gates_applied: 0,
        });
    }

    // Decompress (into the MCDRAM-modeled scratch).
    let t = Instant::now();
    codec.decompress(&unit.in_a, buf_a)?;
    if let Some(in_b) = &unit.in_b {
        codec.decompress(in_b, buf_b)?;
    }
    timings[1] += t.elapsed();

    // Compute.
    let t = Instant::now();
    match kernel {
        Kernel::InBlock { offset_bit } => {
            kernels::apply_in_block(buf_a, offset_bit, gate, offset_cmask);
        }
        Kernel::Cross => {
            kernels::apply_cross(buf_a, buf_b, gate, offset_cmask);
        }
    }
    timings[3] += t.elapsed();

    // Recompress.
    let t = Instant::now();
    let out_a = codec.compress(buf_a, bound)?;
    let out_b = if unit.in_b.is_some() {
        Some(codec.compress(buf_b, bound)?)
    } else {
        None
    };
    timings[0] += t.elapsed();

    cache.insert(
        op_signature,
        &unit.in_a,
        unit.in_b.as_ref(),
        &out_a,
        out_b.as_ref(),
    );

    Ok(UnitOut {
        slot_a: unit.slot_a,
        slot_b: unit.slot_b,
        out_a,
        out_b,
        timings,
        comm_bytes,
        compressed_lossy: bound.is_lossy(),
        cache_hit: false,
        gates_applied: 1,
    })
}

/// Per-gate kernel plan inside a batch: the matrix plus the control masks
/// partitioned by scope (§3.3).
struct BatchPlan {
    gate: Gate1,
    offset_bit: u32,
    offset_cmask: usize,
    block_cmask: usize,
    rank_cmask: usize,
}

/// One block plus the subset of batch gates that fire on it.
struct BatchUnit {
    slot: usize,
    mask: u64,
    block: CompressedBlock,
}

/// Decompress once, apply every selected gate, recompress once.
///
/// The cache key mixes the batch signature with the unit's selection mask:
/// byte-identical blocks with different applicable-gate subsets must never
/// share a line, and one lookup/insert happens per block touch (not per
/// member gate).
fn process_batch_unit(
    codec: &BlockCodec,
    cache: &BlockCache,
    plans: &[BatchPlan],
    batch_signature: u64,
    bound: ErrorBound,
    unit: BatchUnit,
    buf: &mut Vec<f64>,
) -> Result<UnitOut, SimError> {
    let mut timings = [Duration::ZERO; 4];
    let sig = mix(batch_signature, unit.mask);

    if let Some((out, _)) = cache.lookup(sig, &unit.block, None) {
        return Ok(UnitOut {
            slot_a: unit.slot,
            slot_b: None,
            out_a: out,
            out_b: None,
            timings,
            comm_bytes: 0,
            compressed_lossy: false,
            cache_hit: true,
            gates_applied: 0,
        });
    }

    let t = Instant::now();
    codec.decompress(&unit.block, buf)?;
    timings[1] += t.elapsed();

    let t = Instant::now();
    let mut gates = 0u64;
    for (i, plan) in plans.iter().enumerate() {
        if unit.mask & (1 << i) == 0 {
            continue;
        }
        kernels::apply_in_block(buf, plan.offset_bit, &plan.gate, plan.offset_cmask);
        gates += 1;
    }
    timings[3] += t.elapsed();

    let t = Instant::now();
    let out = codec.compress(buf, bound)?;
    timings[0] += t.elapsed();

    cache.insert(sig, &unit.block, None, &out, None);

    Ok(UnitOut {
        slot_a: unit.slot,
        slot_b: None,
        out_a: out,
        out_b: None,
        timings,
        comm_bytes: 0,
        compressed_lossy: bound.is_lossy(),
        cache_hit: false,
        gates_applied: gates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuits::hadamard_wall;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> SimConfig {
        SimConfig::default().with_block_log2(3).with_ranks_log2(1)
    }

    #[test]
    fn initial_state_is_zero_ket() {
        let sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let sv = sim.snapshot_dense().unwrap();
        assert!(sv.amplitudes()[0].approx_eq(Complex64::ONE, 1e-15));
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn matches_dense_on_all_three_routes() {
        // n=6, ranks=2^1, block=2^3: offsets 0-2, block bits 3-4, rank bit 5.
        let mut rng = StdRng::seed_from_u64(0);
        for target in 0..6usize {
            let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
            let mut c = Circuit::new(6);
            c.h(0).h(3).h(5); // spread across all segments
            c.h(target);
            c.t(target);
            sim.run(&c, &mut rng).unwrap();
            let dense = c.simulate_dense(&mut rng);
            let f = sim.snapshot_dense().unwrap().fidelity(&dense);
            assert!(f > 1.0 - 1e-12, "target {target}: fidelity {f}");
        }
    }

    #[test]
    fn controlled_gates_match_dense_across_scopes() {
        let mut rng = StdRng::seed_from_u64(0);
        // Controls in offset / block / rank segments, target likewise.
        let pairs = [(0, 4), (4, 0), (5, 1), (1, 5), (3, 4), (5, 3)];
        for (control, target) in pairs {
            let mut c = Circuit::new(6);
            for q in 0..6 {
                c.h(q);
            }
            c.t(control);
            c.cx(control, target);
            c.cphase(0.7, control, target);
            let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
            sim.run(&c, &mut rng).unwrap();
            let dense = c.simulate_dense(&mut rng);
            let f = sim.snapshot_dense().unwrap().fidelity(&dense);
            assert!(f > 1.0 - 1e-12, "c={control} t={target}: fidelity {f}");
        }
    }

    #[test]
    fn toffoli_matches_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        c.ccx(0, 5, 3);
        c.ccx(4, 2, 0);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        sim.run(&c, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        assert!(sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn swap_matches_dense() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Circuit::new(6);
        c.h(0).t(0).swap(0, 5).swap(2, 3);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        sim.run(&c, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        assert!(sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn norm_preserved_lossless() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sim = CompressedSimulator::new(8, SimConfig::default().with_block_log2(4)).unwrap();
        sim.run(&hadamard_wall(8), &mut rng).unwrap();
        assert!((sim.norm_sqr().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(sim.report().gates, 8);
        assert_eq!(sim.report().fidelity_lower_bound, 1.0);
    }

    #[test]
    fn prob_and_measurement() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let mut c = Circuit::new(6);
        c.h(0).cx(0, 5); // Bell pair across the rank boundary
        sim.run(&c, &mut rng).unwrap();
        assert!((sim.prob_one(0).unwrap() - 0.5).abs() < 1e-12);
        assert!((sim.prob_one(5).unwrap() - 0.5).abs() < 1e-12);
        let outcome = sim.measure(0, &mut rng).unwrap();
        // Entangled partner collapses identically.
        let p5 = sim.prob_one(5).unwrap();
        assert!((p5 - if outcome { 1.0 } else { 0.0 }).abs() < 1e-9);
        assert!((sim.norm_sqr().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_ladder_escalates_under_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        // Tiny budget forces lossy levels almost immediately on a
        // spread-out state.
        let cfg = SimConfig::default()
            .with_block_log2(4)
            .with_memory_budget(3 * (1u64 << 4) * 16 * 2); // ~3 scratch blocks
        let mut sim = CompressedSimulator::new(10, cfg).unwrap();
        let mut c = Circuit::new(10);
        for q in 0..10 {
            c.h(q);
        }
        for q in 0..10 {
            c.rz(0.1 + q as f64, q);
        }
        sim.run(&c, &mut rng).unwrap();
        let report = sim.report();
        assert!(report.escalations > 0, "expected ladder escalation");
        assert!(report.fidelity_lower_bound < 1.0);
        assert!(report.fidelity_lower_bound > 0.0);
    }

    #[test]
    fn lossy_state_stays_close_to_dense() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = SimConfig::default()
            .with_block_log2(4)
            .with_fixed_bound(ErrorBound::PointwiseRelative(1e-4));
        let mut sim = CompressedSimulator::new(8, cfg).unwrap();
        let mut c = Circuit::new(8);
        for q in 0..8 {
            c.h(q);
        }
        for q in 0..7 {
            c.cx(q, q + 1);
        }
        for q in 0..8 {
            c.rz(0.3 * (q + 1) as f64, q);
        }
        sim.run(&c, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        let f = sim.snapshot_dense().unwrap().fidelity(&dense);
        assert!(f > 0.999, "fidelity {f}");
        assert!(f >= sim.report().fidelity_lower_bound - 1e-9);
    }

    #[test]
    fn cache_hits_on_redundant_blocks() {
        let mut rng = StdRng::seed_from_u64(7);
        // Many identical zero blocks: a gate over the high qubit hits
        // byte-identical block pairs repeatedly.
        let cfg = SimConfig::default().with_block_log2(3);
        let mut sim = CompressedSimulator::new(9, cfg).unwrap();
        let mut c = Circuit::new(9);
        c.h(8).h(7);
        sim.run(&c, &mut rng).unwrap();
        assert!(
            sim.cache().hits() > 0,
            "expected cache hits on redundant zero blocks, misses={}",
            sim.cache().misses()
        );
        // Correctness despite caching:
        let dense = c.simulate_dense(&mut rng);
        assert!(sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn comm_bytes_counted_only_for_rank_crossing_gates() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let mut c = Circuit::new(6);
        c.h(0); // in-block
        sim.run(&c, &mut rng).unwrap();
        assert_eq!(sim.report().comm_bytes, 0);
        let mut c2 = Circuit::new(6);
        c2.h(5); // rank bit
        sim.run(&c2, &mut rng).unwrap();
        assert!(sim.report().comm_bytes > 0);
    }

    #[test]
    fn sample_returns_valid_indices() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let mut c = Circuit::new(6);
        c.h(0).h(3);
        sim.run(&c, &mut rng).unwrap();
        for _ in 0..50 {
            let s = sim.sample(&mut rng).unwrap();
            // Only qubits 0 and 3 are in superposition.
            assert_eq!(s & !0b001001, 0, "sampled {s:b}");
        }
    }

    #[test]
    fn z_expectations_match_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut c = Circuit::new(6);
        c.h(0).cx(0, 5).ry(0.8, 3).cx(3, 1);
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        sim.run(&c, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        for q in 0..6 {
            let expect = 1.0 - 2.0 * dense.prob_one(q);
            assert!(
                (sim.expectation_z(q).unwrap() - expect).abs() < 1e-12,
                "qubit {q}"
            );
        }
        // ZZ on the Bell pair (0,5) is +1; on uncorrelated pairs it
        // factorizes.
        assert!((sim.expectation_zz(0, 5).unwrap() - 1.0).abs() < 1e-12);
        let z3 = sim.expectation_z(3).unwrap();
        let z2 = sim.expectation_z(2).unwrap();
        assert!((sim.expectation_zz(2, 3).unwrap() - z2 * z3).abs() < 1e-9);
    }

    #[test]
    fn fusion_matches_unfused_and_reduces_block_touches() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        c.t(0)
            .sx(0)
            .rz(0.3, 1)
            .ry(0.2, 1)
            .cx(1, 0)
            .cphase(0.5, 4, 2);
        c.h(2).t(2);
        let run = |fusion: bool| {
            let cfg = small_cfg().with_fusion(fusion).without_cache();
            let mut sim = CompressedSimulator::new(6, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            sim.run(&c, &mut rng).unwrap();
            let snap = sim.snapshot_dense().unwrap();
            (snap, sim.report())
        };
        let (s_on, r_on) = run(true);
        let (s_off, r_off) = run(false);
        assert!(s_on.fidelity(&s_off) > 1.0 - 1e-12);
        // Source-gate accounting is identical either way.
        assert_eq!(r_on.gates, r_off.gates);
        assert_eq!(r_on.gates, c.gate_count());
        // Fusion + batching must strictly amortize decompression cycles.
        assert!(
            r_on.breakdown.block_touches < r_off.breakdown.block_touches,
            "fused {} vs unfused {} touches",
            r_on.breakdown.block_touches,
            r_off.breakdown.block_touches
        );
        assert!(r_on.breakdown.gates_per_block_touch() > 1.0);
        assert!((r_off.breakdown.gates_per_block_touch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batched_touch_consults_cache_once_per_touch() {
        // n=6, block_log2=3, one rank -> 8 blocks. Four intra-block gates
        // form one batch: the cache must be consulted once per touched
        // block (8), not once per gate per block (32).
        let mut c = Circuit::new(6);
        c.h(0).t(1).rz(0.1, 2).h(1);
        let mut rng = StdRng::seed_from_u64(0);

        // Cache on: exactly one consult (hit or miss) per touched block.
        let cfg = SimConfig::default().with_block_log2(3).with_ranks_log2(0);
        let mut sim = CompressedSimulator::new(6, cfg).unwrap();
        sim.run(&c, &mut rng).unwrap();
        assert_eq!(
            sim.cache().hits() + sim.cache().misses(),
            8,
            "expected one cache consult per block touch"
        );

        // Cache off: every block is cycled once and carries all four gates.
        let cfg = SimConfig::default()
            .with_block_log2(3)
            .with_ranks_log2(0)
            .without_cache();
        let mut sim = CompressedSimulator::new(6, cfg).unwrap();
        sim.run(&c, &mut rng).unwrap();
        assert_eq!(sim.metrics().block_touches(), 8);
        assert_eq!(sim.metrics().batched_gate_applications(), 32);
        assert!((sim.metrics().gates_per_block_touch() - 4.0).abs() < 1e-12);
        let dense = c.simulate_dense(&mut rng);
        assert!(sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn selection_mask_keeps_cache_sound_across_identical_blocks() {
        // 16 byte-identical blocks, then a batch where a block-scope
        // control makes the applicable-gate subset differ between blocks.
        // If the selection mask were not part of the cache key, one class
        // of blocks would be served the other class's cached output.
        let cfg = SimConfig::default().with_block_log2(2).with_ranks_log2(0);
        let mut sim = CompressedSimulator::new(6, cfg).unwrap();
        let mut c = Circuit::new(6);
        c.h(2).h(3).h(4).h(5); // spread: every block holds (0.25, 0) at offset 0
        c.x(0); // fires on all 16 blocks
        c.cx(5, 1); // fires only where the qubit-5 block bit is 1
        let mut rng = StdRng::seed_from_u64(0);
        sim.run(&c, &mut rng).unwrap();
        // The last two gates form one batch over 16 byte-identical blocks
        // split into two selection classes (X-only vs X-then-CX). Any key
        // collision between the classes corrupts amplitudes.
        let dense = c.simulate_dense(&mut rng);
        assert!(
            sim.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12,
            "selection-mask collision corrupted the state"
        );
    }

    #[test]
    fn run_schedule_rejects_mismatched_geometry() {
        use qcs_circuits::{schedule_circuit, FusionPolicy};
        let mut c = Circuit::new(6);
        c.h(0).t(1);
        // Schedule built for 5-bit blocks; simulator uses 3-bit blocks with
        // qubit 4 routing inter-block -> batching it is a config error.
        let mut c2 = Circuit::new(6);
        c2.h(4).t(3);
        let sched = schedule_circuit(&c2, &FusionPolicy::for_block(5));
        let mut sim = CompressedSimulator::new(6, small_cfg()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let err = sim.run_schedule(&sched, &mut rng);
        assert!(matches!(err, Err(SimError::Config(_))), "got {err:?}");
        // The well-matched schedule runs fine.
        let sched_ok = schedule_circuit(&c, &FusionPolicy::for_block(3));
        let mut sim2 = CompressedSimulator::new(6, small_cfg()).unwrap();
        sim2.run_schedule(&sched_ok, &mut rng).unwrap();
        let dense = c.simulate_dense(&mut rng);
        assert!(sim2.snapshot_dense().unwrap().fidelity(&dense) > 1.0 - 1e-12);
    }

    #[test]
    fn batched_lossy_run_charges_ledger_once_per_batch() {
        let mut c = Circuit::new(6);
        c.h(0).rz(0.4, 1).ry(0.2, 2).t(0); // one 4-gate batch at block_log2=3
        let lossy = ErrorBound::PointwiseRelative(1e-4);
        let run = |fusion: bool| {
            let cfg = SimConfig::default()
                .with_block_log2(3)
                .with_fixed_bound(lossy)
                .with_fusion(fusion);
            let mut sim = CompressedSimulator::new(6, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            sim.run(&c, &mut rng).unwrap();
            (
                sim.ledger().lossy_gates(),
                sim.report().fidelity_lower_bound,
            )
        };
        let (lossy_on, bound_on) = run(true);
        let (lossy_off, bound_off) = run(false);
        assert_eq!(lossy_off, 4, "unfused: one lossy event per gate");
        assert_eq!(lossy_on, 1, "fused: one lossy event per batch");
        assert!(bound_on > bound_off);
    }

    #[test]
    fn grover_end_to_end_compressed() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 8;
        let target = 0b1011_0101 & ((1 << n) - 1);
        let c = qcs_circuits::grover_circuit(n, target, qcs_circuits::optimal_iterations(n));
        let cfg = SimConfig::default().with_block_log2(4).with_ranks_log2(1);
        let mut sim = CompressedSimulator::new(n as u32, cfg).unwrap();
        sim.run(&c, &mut rng).unwrap();
        let sv = sim.snapshot_dense().unwrap();
        let p = sv.probabilities()[target as usize];
        assert!(p > 0.95, "grover success probability {p}");
        // Structured circuit: compression ratio should be comfortably > 1.
        assert!(sim.report().min_compression_ratio > 1.0);
    }
}
