//! Compact little-endian field encoders/decoders for frame bodies.
//!
//! Encoding is append-only onto a `Vec<u8>` via the `put_*` free
//! functions; decoding walks the body with a [`Cursor`] whose `take_*`
//! methods fail with [`NetError::Corrupt`](crate::NetError)
//! instead of panicking when the body is shorter than the message layout
//! claims. All multi-byte integers and floats are little-endian, matching
//! the block-frame format.

use crate::NetError;

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (`u32`) byte string.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

/// Forward-only reader over a frame body. Every `take_*` checks the
/// remaining length first, so a short or malformed body decodes to a
/// typed error rather than a slice panic.
#[derive(Debug)]
pub struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start reading `body` from the beginning.
    pub fn new(body: &'a [u8]) -> Self {
        Self { body, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    /// Error unless every byte of the body has been consumed — catches
    /// messages that decode "successfully" but were built for a newer,
    /// longer layout.
    pub fn finish(&self) -> Result<(), NetError> {
        if self.remaining() != 0 {
            return Err(NetError::Corrupt(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Corrupt(format!(
                "message truncated: wanted {n} more bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// The unconsumed tail of the body. Together with [`Cursor::skip`]
    /// this lets a caller embed a foreign self-delimiting encoding (e.g. a
    /// `qcs_compress` block frame) inside a message: decode from `rest()`,
    /// then `skip` however many bytes that decoder consumed.
    pub fn rest(&self) -> &'a [u8] {
        &self.body[self.pos..]
    }

    /// Consume `n` bytes without interpreting them.
    pub fn skip(&mut self, n: usize) -> Result<(), NetError> {
        self.take(n).map(|_| ())
    }

    /// Read a `u8`.
    pub fn take_u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `u32` and bounds-check it as a `usize` count against the
    /// bytes actually remaining (at `min_elem_size` bytes per element), so
    /// a corrupt count cannot drive a huge allocation downstream.
    pub fn take_count(&mut self, min_elem_size: usize) -> Result<usize, NetError> {
        let n = self.take_u32()? as usize;
        let floor = n.saturating_mul(min_elem_size.max(1));
        if floor > self.remaining() {
            return Err(NetError::Corrupt(format!(
                "count {n} needs at least {floor} bytes, have {}",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], NetError> {
        let n = self.take_count(1)?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, NetError> {
        std::str::from_utf8(self.take_bytes()?)
            .map_err(|e| NetError::Corrupt(format!("invalid utf-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 123_456);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.125);
        put_bytes(&mut buf, b"raw");
        put_str(&mut buf, "qubits");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.take_u8().unwrap(), 0xAB);
        assert_eq!(c.take_u32().unwrap(), 123_456);
        assert_eq!(c.take_u64().unwrap(), u64::MAX - 7);
        assert_eq!(c.take_f64().unwrap(), -0.125);
        assert_eq!(c.take_bytes().unwrap(), b"raw");
        assert_eq!(c.take_str().unwrap(), "qubits");
        c.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 9);
        let mut c = Cursor::new(&buf[..2]);
        assert!(matches!(c.take_u32(), Err(NetError::Corrupt(_))));
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // claims ~4 billion elements
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.take_count(8), Err(NetError::Corrupt(_))));
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 1);
        put_u8(&mut buf, 2);
        let mut c = Cursor::new(&buf);
        c.take_u8().unwrap();
        assert!(matches!(c.finish(), Err(NetError::Corrupt(_))));
    }

    #[test]
    fn non_utf8_string_is_corrupt() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xFF, 0xFE]);
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.take_str(), Err(NetError::Corrupt(_))));
    }
}
