//! The daemons' ephemeral-port handshake: a one-line startup banner.
//!
//! `qcsim-workerd` and `qcsim-serverd` bind `127.0.0.1:0` by default, so
//! the only way a launcher learns the actual port is the first stdout
//! line. This module is the single definition of that line's shape —
//! [`announce`] formats it, [`parse`] recognizes it, and [`read_addr`]
//! blocks on a child's stdout until it arrives — so tests and scripts
//! stop re-implementing ad-hoc string splitting against each daemon.

use std::io::BufRead;

/// The fixed phrase between the service name and the address.
const PHRASE: &str = " listening on ";

/// Format the startup banner for `service` bound at `addr`, e.g.
/// `qcsim-workerd listening on 127.0.0.1:40123`. Print this as the
/// daemon's first stdout line (and flush) once the listener is bound.
pub fn announce(service: &str, addr: &std::net::SocketAddr) -> String {
    format!("{service}{PHRASE}{addr}")
}

/// Extract the `host:port` address from a banner line produced by
/// [`announce`] (any service name). Returns `None` when the line is not
/// a banner or carries an empty address.
pub fn parse(line: &str) -> Option<&str> {
    let (_service, addr) = line.trim_end().split_once(PHRASE)?;
    let addr = addr.trim();
    (!addr.is_empty() && addr.contains(':')).then_some(addr)
}

/// Read lines from a just-spawned daemon's stdout until the banner
/// arrives and return the advertised address. Non-banner lines before it
/// are skipped (daemons may log warnings first); end-of-stream before
/// any banner is an [`std::io::ErrorKind::UnexpectedEof`] error — the
/// daemon died during startup.
pub fn read_addr<R: BufRead>(reader: &mut R) -> std::io::Result<String> {
    for line in reader.lines() {
        if let Some(addr) = parse(&line?) {
            return Ok(addr.to_string());
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "daemon exited before printing its listen banner",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_and_parse_round_trip() {
        let addr: std::net::SocketAddr = "127.0.0.1:40123".parse().unwrap();
        let line = announce("qcsim-workerd", &addr);
        assert_eq!(parse(&line), Some("127.0.0.1:40123"));
        assert_eq!(parse(&format!("{line}\n")), Some("127.0.0.1:40123"));
    }

    #[test]
    fn parse_rejects_non_banners() {
        assert_eq!(parse("warning: something"), None);
        assert_eq!(parse("listening on"), None);
        assert_eq!(parse("svc listening on "), None);
        assert_eq!(parse("svc listening on not-an-addr"), None);
    }

    #[test]
    fn read_addr_skips_noise_and_fails_on_eof() {
        let mut ok = std::io::Cursor::new(b"warming up\nsvc listening on [::1]:9\n".to_vec());
        assert_eq!(read_addr(&mut ok).unwrap(), "[::1]:9");
        let mut eof = std::io::Cursor::new(b"no banner here\n".to_vec());
        let err = read_addr(&mut eof).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
