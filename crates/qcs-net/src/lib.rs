//! # qcs-net
//!
//! Framed TCP wire transport for the simulator's rank-worker protocol.
//!
//! The paper's deployment drives ranks over MPI; this crate supplies the
//! socket-level half of the in-repo stand-in: a length-prefixed,
//! checksummed message frame (the same FNV-1a convention as
//! `qcs_compress::frame` uses for blocks at rest), compact little-endian
//! field encoders/decoders for message bodies, and supervised TCP
//! connection establishment (bounded reconnect-with-backoff, read/write
//! timeouts).
//!
//! What travels *inside* the frames — the `WorkerCmd`/`WorkerOut`
//! serialization, handshake, and the relay protocol for inter-rank
//! exchanges — is defined by `qcs-core::net` on top of this crate, so the
//! layering mirrors a connection-front / core-router split: this crate
//! knows bytes and sockets, never simulator types.
//!
//! ## Frame format
//!
//! ```text
//! magic "QWP1" (4) | kind u8 | body_len u32 le | checksum u64 le (FNV-1a
//! over body) | body
//! ```
//!
//! The `kind` byte is opaque to this crate; the protocol built on top
//! assigns meanings. Like the block-frame decoder, [`recv_frame`] never
//! trusts `body_len` for an upfront allocation: the body buffer grows
//! with bytes actually received, so a corrupt or hostile header cannot
//! demand gigabytes.

#![warn(missing_docs)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

pub mod banner;
pub mod wire;

pub use wire::Cursor;

/// Version of the wire protocol spoken over these frames. Bumped on any
/// incompatible change to the frame format or the message bodies built on
/// it; the handshake rejects mismatches.
pub const PROTOCOL_VERSION: u32 = 2;

/// Frame magic: "QWP" + format version 1.
pub const MAGIC: [u8; 4] = *b"QWP1";

/// Fixed size of the frame header preceding the body:
/// magic 4 + kind 1 + body_len 4 + checksum 8.
pub const HEADER_LEN: usize = 17;

/// Largest body a frame accepts (1 GiB, matching the block-frame cap): a
/// length field beyond this is corruption, not an allocation request.
pub const MAX_BODY: usize = 1 << 30;

/// Upper bound on the body buffer reserved before any body byte has been
/// read (64 KiB); larger bodies grow the buffer as bytes arrive.
const BODY_ALLOC_CHUNK: usize = 64 * 1024;

/// Errors surfaced by the wire layer.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket/reader/writer failed (includes timeouts and
    /// peer-closed connections).
    Io(std::io::Error),
    /// The stream is not a frame, or its checksum/fields are inconsistent.
    Corrupt(String),
    /// The peer speaks a different protocol (version mismatch, unexpected
    /// message kind, handshake violation).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "wire i/o error: {e}"),
            NetError::Corrupt(m) => write!(f, "corrupt wire frame: {m}"),
            NetError::Protocol(m) => write!(f, "wire protocol error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Write one frame (`kind` byte plus `body`) to `w` and flush it.
pub fn send_frame<W: Write>(w: &mut W, kind: u8, body: &[u8]) -> Result<(), NetError> {
    if body.len() > MAX_BODY {
        return Err(NetError::Corrupt(format!(
            "body of {} bytes exceeds the {MAX_BODY}-byte frame cap",
            body.len()
        )));
    }
    w.write_all(&MAGIC)?;
    w.write_all(&[kind])?;
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&qcs_compress::frame::fnv1a(body).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from `r`, verifying magic, length sanity, and the body
/// checksum. Returns the kind byte and the body.
///
/// A cleanly closed stream (EOF before the first header byte) surfaces as
/// `NetError::Io` with [`std::io::ErrorKind::UnexpectedEof`].
pub fn recv_frame<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), NetError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(NetError::Corrupt("bad frame magic".into()));
    }
    let kind = header[4];
    let body_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
    if body_len > MAX_BODY {
        return Err(NetError::Corrupt(format!(
            "body length {body_len} exceeds the {MAX_BODY}-byte frame cap"
        )));
    }
    let checksum = u64::from_le_bytes(header[9..17].try_into().expect("8 bytes"));
    // Same discipline as the block-frame reader: reserve at most one
    // chunk and let the buffer grow with delivered bytes, so a lying
    // header costs what the stream yields, not what it claims.
    let mut body = Vec::with_capacity(body_len.min(BODY_ALLOC_CHUNK));
    let got = r.take(body_len as u64).read_to_end(&mut body)?;
    if got < body_len {
        return Err(NetError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("frame body truncated: header claims {body_len} bytes, stream had {got}"),
        )));
    }
    if qcs_compress::frame::fnv1a(&body) != checksum {
        return Err(NetError::Corrupt("frame body checksum mismatch".into()));
    }
    Ok((kind, body))
}

/// Connection-establishment policy: bounded reconnect-with-backoff plus
/// the I/O timeouts installed on the accepted stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectPolicy {
    /// Total connection attempts before giving up (minimum 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per retry (capped at 2 s).
    pub initial_backoff: Duration,
    /// Read timeout installed on the connected stream (`None` = block
    /// forever). Waves can legitimately take long on big states, so the
    /// default is generous.
    pub read_timeout: Option<Duration>,
    /// Write timeout installed on the connected stream.
    pub write_timeout: Option<Duration>,
}

impl Default for ConnectPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            initial_backoff: Duration::from_millis(50),
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(120)),
        }
    }
}

/// Connect to `addr` under `policy`: up to `policy.attempts` tries with
/// exponential backoff between them, then timeouts and `TCP_NODELAY`
/// installed on the stream. Returns the last connect error when every
/// attempt fails.
pub fn connect_supervised(addr: &str, policy: &ConnectPolicy) -> Result<TcpStream, NetError> {
    let attempts = policy.attempts.max(1);
    let mut backoff = policy.initial_backoff;
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_secs(2));
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(policy.read_timeout)?;
                stream.set_write_timeout(policy.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(NetError::Io(last_err.unwrap_or_else(|| {
        std::io::Error::other("no connect attempts made")
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        send_frame(&mut buf, 7, b"hello wire").unwrap();
        send_frame(&mut buf, 9, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(recv_frame(&mut r).unwrap(), (7, b"hello wire".to_vec()));
        assert_eq!(recv_frame(&mut r).unwrap(), (9, Vec::new()));
        assert!(r.is_empty());
    }

    #[test]
    fn rejects_bad_magic_and_checksum() {
        let mut buf = Vec::new();
        send_frame(&mut buf, 1, b"payload").unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            recv_frame(&mut bad_magic.as_slice()),
            Err(NetError::Corrupt(_))
        ));
        let mut bad_body = buf;
        let last = bad_body.len() - 1;
        bad_body[last] ^= 0x01;
        assert!(matches!(
            recv_frame(&mut bad_body.as_slice()),
            Err(NetError::Corrupt(_))
        ));
    }

    #[test]
    fn lying_length_field_is_truncation_not_allocation() {
        let mut buf = Vec::new();
        send_frame(&mut buf, 1, b"short").unwrap();
        // Claim 256 MiB (within the cap) over a 5-byte body.
        buf[5..9].copy_from_slice(&(256u32 << 20).to_le_bytes());
        match recv_frame(&mut buf.as_slice()) {
            Err(NetError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}")
            }
            other => panic!("lying length accepted: {other:?}"),
        }
        // Beyond the cap is corruption outright.
        let mut over = Vec::new();
        send_frame(&mut over, 1, b"x").unwrap();
        over[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            recv_frame(&mut over.as_slice()),
            Err(NetError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_header_is_io_error() {
        let mut buf = Vec::new();
        send_frame(&mut buf, 1, b"abc").unwrap();
        for cut in 0..HEADER_LEN {
            assert!(
                matches!(recv_frame(&mut &buf[..cut]), Err(NetError::Io(_))),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn connect_retries_then_reports_last_error() {
        // A port nothing listens on: bind-then-drop reserves and releases.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let policy = ConnectPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(1),
            ..ConnectPolicy::default()
        };
        assert!(matches!(
            connect_supervised(&addr, &policy),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn connect_supervised_installs_timeouts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let policy = ConnectPolicy {
            read_timeout: Some(Duration::from_millis(250)),
            ..ConnectPolicy::default()
        };
        let stream = connect_supervised(&addr, &policy).unwrap();
        // The kernel may round the timeout to its timer granularity, so
        // check for "installed and in the right ballpark", not equality.
        let installed = stream.read_timeout().unwrap().expect("timeout installed");
        assert!(
            installed >= Duration::from_millis(250) && installed < Duration::from_millis(500),
            "unexpected rounded timeout {installed:?}"
        );
        assert!(stream.nodelay().unwrap());
    }
}
