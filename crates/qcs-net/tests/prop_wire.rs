//! Wire-codec property suite (proptest): every codec that crosses the
//! job protocol — circuits, [`SimConfig`], [`SimReport`], [`JobCmd`],
//! [`JobOut`] — must
//!
//! 1. round-trip arbitrary values exactly (`decode(encode(v)) == v`),
//! 2. turn *every* strict prefix of a valid encoding into a typed
//!    [`NetError`] — never a panic, never a silently-wrong value, and
//! 3. survive arbitrary single-byte corruption without panicking
//!    (corruption may decode to a different valid value or a typed
//!    error; it must never take the process down).
//!
//! This test lives in `qcs-net` (the transport the frames ride on) and
//! dev-depends back on `qcs-core`/`qcs-server` for the codecs layered
//! above it — a dev-only cycle cargo permits.

use proptest::prelude::*;
use qcs_circuits::{Circuit, Op};
use qcs_compress::{CodecId, ErrorBound};
use qcs_core::{put_sim_config, put_sim_report, take_sim_config, take_sim_report, SimConfig};
use qcs_core::{SimReport, SpillConfig};
use qcs_net::{Cursor, NetError};
use qcs_server::protocol::{
    decode_job_cmd, decode_job_out, encode_job_cmd, encode_job_out, put_circuit, take_circuit,
    AdmissionEvent, HealthInfo, JobCmd, JobId, JobOut, JobSpec, JobState, JobSummary,
};
use qcs_statevec::GateKind;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_gate() -> impl Strategy<Value = GateKind> {
    prop_oneof![
        5 => (0usize..10).prop_map(|k| {
            [
                GateKind::H,
                GateKind::X,
                GateKind::Y,
                GateKind::Z,
                GateKind::S,
                GateKind::Sdg,
                GateKind::T,
                GateKind::Tdg,
                GateKind::SqrtX,
                GateKind::SqrtY,
            ][k]
        }),
        1 => (-7.0f64..7.0).prop_map(GateKind::Rx),
        1 => (-7.0f64..7.0).prop_map(GateKind::Ry),
        1 => (-7.0f64..7.0).prop_map(GateKind::Rz),
        1 => (-7.0f64..7.0).prop_map(GateKind::Phase),
        1 => ((-7.0f64..7.0), (-7.0f64..7.0), (-7.0f64..7.0))
            .prop_map(|(t, p, l)| GateKind::U3(t, p, l)),
    ]
}

/// Raw op descriptor: (shape tag, qubit picks, control count, gate).
/// Reduced modulo the qubit count when the circuit is assembled, so any
/// tuple yields a structurally valid op.
type RawOp = (usize, usize, usize, usize, GateKind);

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (
        2usize..6,
        prop::collection::vec(
            (0usize..5, 0usize..64, 0usize..64, 1usize..5, arb_gate()),
            0..14,
        ),
    )
        .prop_map(|(n, raw): (usize, Vec<RawOp>)| {
            let mut c = Circuit::new(n);
            for (shape, a, b, k, gate) in raw {
                let target = a % n;
                let other = b % n;
                match shape {
                    0 => {
                        c.push(Op::Single { gate, target });
                    }
                    1 if other != target => {
                        c.push(Op::Controlled {
                            gate,
                            control: other,
                            target,
                        });
                    }
                    2 => {
                        let controls: Vec<usize> =
                            (0..n).filter(|q| *q != target).take(k.min(n - 1)).collect();
                        if !controls.is_empty() {
                            c.push(Op::MultiControlled {
                                gate,
                                controls,
                                target,
                            });
                        }
                    }
                    3 if other != target => {
                        c.push(Op::Swap {
                            a: target,
                            b: other,
                        });
                    }
                    _ => {
                        c.push(Op::Measure { target });
                    }
                }
            }
            c
        })
}

fn arb_bound() -> impl Strategy<Value = ErrorBound> {
    prop_oneof![
        1 => Just(ErrorBound::Lossless),
        2 => (1u32..9).prop_map(|e| ErrorBound::PointwiseRelative(10f64.powi(-(e as i32)))),
        1 => (1u32..9).prop_map(|e| ErrorBound::Absolute(10f64.powi(-(e as i32)))),
    ]
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        (2u32..7, 0u32..3, 0usize..5, 0u64..3, 0usize..7, 0usize..3),
        (0u8..2, 1usize..9, 0usize..9, 0u8..2, 0u8..2, 1usize..4),
        (0u8..2, 0u8..2, 0usize..3, 1u32..5, 0u64..3, arb_bound()),
    )
        .prop_map(
            |(
                (block_log2, ranks_log2, threads_raw, mem_raw, codec_raw, cache_raw),
                (fusion, max_batch, spill_raw, write_behind, planned_min, shards),
                (prefetch, partial, remote_raw, attempts, timeout_raw, bound),
            )| {
                let mut cfg = SimConfig::default()
                    .with_block_log2(block_log2)
                    .with_ranks_log2(ranks_log2)
                    .with_fixed_bound(bound)
                    .with_fusion(fusion == 1)
                    .with_max_batch_gates(max_batch)
                    .with_prefetch(prefetch == 1)
                    .with_partial_decode(partial == 1);
                cfg.threads_per_rank = (threads_raw > 0).then_some(threads_raw);
                cfg.memory_budget = (mem_raw > 0).then_some(mem_raw << 24);
                cfg.lossy_codec = CodecId::ALL[codec_raw];
                cfg.cache_lines = cache_raw * 32;
                if spill_raw > 0 {
                    let mut spill = SpillConfig::new(spill_raw);
                    spill.write_behind = write_behind == 1;
                    spill.shards = shards;
                    if planned_min == 1 {
                        spill.eviction = qcs_core::Eviction::PlannedMin;
                    }
                    if spill_raw % 2 == 0 {
                        spill.dir = Some(std::path::PathBuf::from(format!("spill-{spill_raw}")));
                    }
                    cfg.spill = Some(spill);
                }
                if remote_raw > 0 {
                    cfg = cfg.with_remote(
                        (0..remote_raw)
                            .map(|i| format!("worker-{i}.example:74{i:02}"))
                            .collect::<Vec<_>>(),
                    );
                    let remote = cfg.remote.as_mut().expect("just set");
                    remote.connect_attempts = attempts;
                    remote.io_timeout_ms = (timeout_raw > 0).then_some(timeout_raw * 30_000);
                }
                cfg
            },
        )
}

fn arb_report() -> impl Strategy<Value = SimReport> {
    (
        (
            1u32..40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
        ),
        (
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
        ),
        (
            0.0f64..1.0,
            0.5f64..80.0,
            arb_bound(),
            0u64..1 << 60,
            0u64..1 << 30,
            0u64..1 << 30,
        ),
    )
        .prop_map(
            |(
                (num_qubits, gates, a, b, c, d),
                (e, f, g, h, i, j),
                (fidelity, ratio, bound, wall_ns, k, l),
            )| {
                let mut r = SimReport {
                    num_qubits,
                    gates: gates as usize,
                    wall_time: Duration::from_nanos(wall_ns),
                    fidelity_lower_bound: fidelity,
                    current_bound: bound,
                    escalations: a,
                    min_compression_ratio: ratio,
                    peak_memory_bytes: b,
                    uncompressed_bytes: (b as u128) << 64 | c as u128,
                    cache_hits: c,
                    cache_misses: d,
                    bytes_exchanged: e,
                    comm_ns: f,
                    exchanges: g,
                    spills: h,
                    fetches: i,
                    spill_bytes: j,
                    fetch_bytes: k,
                    spill_io_ns: l,
                    prefetch_hits: a ^ e,
                    prefetch_misses: b ^ f,
                    blocking_fetch_bytes: c ^ g,
                    overlapped_fetch_bytes: d ^ h,
                    prefetch_ns: e ^ i,
                    write_behind_spills: f ^ j,
                    write_behind_bytes: g ^ k,
                    write_behind_ns: h ^ l,
                    partial_decodes: i ^ k,
                    segments_decoded: j ^ l,
                    segments_full: a ^ l,
                    segment_bytes_read: b ^ k,
                    segment_bytes_full: c ^ j,
                    codec_allocs: d ^ i,
                    codec_bytes_alloc: e ^ h,
                    scratch_reuse_hits: f ^ g,
                    breakdown: Default::default(),
                };
                r.breakdown.compression = Duration::from_nanos(a & ((1 << 50) - 1));
                r.breakdown.decompression = Duration::from_nanos(b & ((1 << 50) - 1));
                r.breakdown.communication = Duration::from_nanos(c & ((1 << 50) - 1));
                r.breakdown.computation = Duration::from_nanos(d & ((1 << 50) - 1));
                r.breakdown.spill_io = Duration::from_nanos(e & ((1 << 50) - 1));
                r.breakdown.prefetch = Duration::from_nanos(f & ((1 << 50) - 1));
                r.breakdown.write_behind = Duration::from_nanos(g & ((1 << 50) - 1));
                r.breakdown.comm_bytes = h;
                r.breakdown.exchanges = i;
                r.breakdown.block_touches = j;
                r.breakdown.batched_gate_applications = k;
                r.breakdown.spills = l;
                r.breakdown.fetches = a;
                r.breakdown.spill_bytes = b;
                r.breakdown.fetch_bytes = c;
                r.breakdown.prefetch_hits = d;
                r.breakdown.prefetch_misses = e;
                r.breakdown.blocking_fetch_bytes = f;
                r.breakdown.overlapped_fetch_bytes = g;
                r.breakdown.write_behind_spills = h;
                r.breakdown.write_behind_bytes = i;
                r.breakdown.partial_decodes = j;
                r.breakdown.segments_decoded = k;
                r.breakdown.segments_full = l;
                r.breakdown.segment_bytes_read = a ^ b;
                r.breakdown.segment_bytes_full = c ^ d;
                r.breakdown.codec_allocs = e ^ f;
                r.breakdown.codec_bytes_alloc = g ^ h;
                r.breakdown.scratch_reuse_hits = i ^ j;
                r
            },
        )
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        arb_circuit(),
        arb_config(),
        (0u8..8, 0u64..1 << 60, 0u8..2, 0u64..50, 0usize..4),
    )
        .prop_map(
            |(circuit, config, (priority, seed, amps, pace, name_pick))| {
                let name = ["fleet-α", "tenant a", "", "x"][name_pick];
                let mut spec = JobSpec::new(name, circuit, config)
                    .with_priority(priority)
                    .with_seed(seed)
                    .with_pace_ms(pace);
                if amps == 1 {
                    spec = spec.with_amplitudes();
                }
                spec
            },
        )
}

fn arb_cmd() -> impl Strategy<Value = JobCmd> {
    prop_oneof![
        4 => arb_spec().prop_map(|spec| JobCmd::Submit(Box::new(spec))),
        1 => (0u64..1 << 50).prop_map(|id| JobCmd::Cancel { job: JobId(id) }),
        1 => Just(JobCmd::Health),
    ]
}

fn arb_state() -> impl Strategy<Value = JobState> {
    (0usize..7).prop_map(|k| {
        [
            JobState::Queued,
            JobState::Admitted,
            JobState::Running,
            JobState::Suspended,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ][k]
    })
}

fn arb_health() -> impl Strategy<Value = HealthInfo> {
    (
        (0u64..1 << 50, 0u64..1 << 50, 0u64..1 << 50),
        prop::collection::vec(
            (
                (0u64..1 << 40, 0u8..8, 0u64..1 << 40, 0usize..3),
                arb_state(),
            ),
            0..5,
        ),
        prop::collection::vec(
            (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
            0..5,
        ),
    )
        .prop_map(
            |((uptime_ms, budget_bytes, carved_bytes), jobs, admissions)| HealthInfo {
                uptime_ms,
                budget_bytes,
                carved_bytes,
                jobs: jobs
                    .into_iter()
                    .map(
                        |((job, priority, carve_bytes, name_pick), state)| JobSummary {
                            job: JobId(job),
                            name: ["νile", "j", ""][name_pick].to_string(),
                            priority,
                            state,
                            carve_bytes,
                        },
                    )
                    .collect(),
                admissions: admissions
                    .into_iter()
                    .enumerate()
                    .map(
                        |(seq, (job, carve_bytes, carved_after, cap))| AdmissionEvent {
                            seq: seq as u64,
                            job: JobId(job),
                            carve_bytes,
                            carved_after,
                            cap,
                        },
                    )
                    .collect(),
            },
        )
}

fn arb_out() -> impl Strategy<Value = JobOut> {
    prop_oneof![
        1 => (0u64..1 << 50).prop_map(|id| JobOut::Accepted { job: JobId(id) }),
        1 => (0usize..3).prop_map(|k| JobOut::Rejected {
            reason: ["over budget", "", "bad spec ∞"][k].to_string(),
        }),
        1 => ((0u64..1 << 50), arb_state()).prop_map(|(id, state)| JobOut::State {
            job: JobId(id),
            state,
        }),
        2 => ((0u64..1 << 50), (0u64..1 << 30), (0u64..1 << 30), arb_report()).prop_map(
            |(id, item, extra, report)| JobOut::Wave {
                job: JobId(id),
                item,
                items: item + extra,
                report: Box::new(report),
            }
        ),
        2 => (
            (0u64..1 << 50),
            arb_report(),
            prop::collection::vec(-1.0f64..1.0, 0..9)
        )
            .prop_map(|(id, report, amplitudes)| JobOut::Done {
                job: JobId(id),
                report: Box::new(report),
                amplitudes,
            }),
        1 => ((0u64..1 << 50), (0usize..3)).prop_map(|(id, k)| JobOut::Failed {
            job: JobId(id),
            error: ["spill error: disk full", "worker died", ""][k].to_string(),
        }),
        1 => arb_health().prop_map(JobOut::Health),
    ]
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Every strict prefix of `bytes` must decode to a typed error — never
/// panic, never succeed (the codecs have no optional trailing data).
fn assert_prefixes_fail<T, F: Fn(&[u8]) -> Result<T, NetError>>(bytes: &[u8], decode: F) {
    for len in 0..bytes.len() {
        assert!(
            decode(&bytes[..len]).is_err(),
            "decode of {len}-byte prefix (of {}) must fail",
            bytes.len()
        );
    }
}

/// Flip one byte and decode: any outcome but a panic is acceptable.
fn assert_corruption_no_panic<T, F: Fn(&[u8]) -> Result<T, NetError>>(
    bytes: &[u8],
    pos: usize,
    flip: u8,
    decode: F,
) {
    if bytes.is_empty() {
        return;
    }
    let mut copy = bytes.to_vec();
    let idx = pos % copy.len();
    copy[idx] ^= flip | 1;
    let _ = decode(&copy);
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn circuit_codec_round_trips(circuit in arb_circuit(), pos in 0usize..4096, flip in 0u8..255) {
        let mut buf = Vec::new();
        put_circuit(&mut buf, &circuit);
        let decode = |bytes: &[u8]| {
            let mut cur = Cursor::new(bytes);
            let c = take_circuit(&mut cur)?;
            cur.finish()?;
            Ok(c)
        };
        let back = decode(&buf).expect("round trip decodes");
        prop_assert_eq!(&back, &circuit);
        assert_prefixes_fail(&buf, decode);
        assert_corruption_no_panic(&buf, pos, flip, decode);
    }

    #[test]
    fn sim_config_codec_round_trips(cfg in arb_config(), pos in 0usize..4096, flip in 0u8..255) {
        let mut buf = Vec::new();
        put_sim_config(&mut buf, &cfg).expect("utf-8 spill dir encodes");
        let decode = |bytes: &[u8]| {
            let mut cur = Cursor::new(bytes);
            let c = take_sim_config(&mut cur)?;
            cur.finish()?;
            Ok(c)
        };
        let back = decode(&buf).expect("round trip decodes");
        prop_assert_eq!(&back, &cfg);
        assert_prefixes_fail(&buf, decode);
        assert_corruption_no_panic(&buf, pos, flip, decode);
    }

    #[test]
    fn sim_report_codec_round_trips(report in arb_report(), pos in 0usize..4096, flip in 0u8..255) {
        let mut buf = Vec::new();
        put_sim_report(&mut buf, &report);
        let decode = |bytes: &[u8]| {
            let mut cur = Cursor::new(bytes);
            let r = take_sim_report(&mut cur)?;
            cur.finish()?;
            Ok(r)
        };
        let back = decode(&buf).expect("round trip decodes");
        prop_assert_eq!(&back, &report);
        assert_prefixes_fail(&buf, decode);
        assert_corruption_no_panic(&buf, pos, flip, decode);
    }

    #[test]
    fn job_cmd_codec_round_trips(cmd in arb_cmd(), pos in 0usize..4096, flip in 0u8..255) {
        let buf = encode_job_cmd(&cmd).expect("encodes");
        let back = decode_job_cmd(&buf).expect("round trip decodes");
        prop_assert_eq!(&back, &cmd);
        assert_prefixes_fail(&buf, decode_job_cmd);
        assert_corruption_no_panic(&buf, pos, flip, decode_job_cmd);
    }

    #[test]
    fn job_out_codec_round_trips(out in arb_out(), pos in 0usize..4096, flip in 0u8..255) {
        let buf = encode_job_out(&out);
        let back = decode_job_out(&buf).expect("round trip decodes");
        prop_assert_eq!(&back, &out);
        assert_prefixes_fail(&buf, decode_job_out);
        assert_corruption_no_panic(&buf, pos, flip, decode_job_out);
    }
}
