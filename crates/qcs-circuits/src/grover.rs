//! Grover's search benchmark (paper §5.3).
//!
//! The paper's Grover benchmark searches for a square-root value with an
//! oracle built from X and Toffoli gates. We provide exactly that
//! construction: the marked item is encoded with X conjugation, the phase
//! flip is a multi-controlled Z, and an ancilla-ladder variant decomposes
//! the multi-controlled Z into Toffolis so that the gate census matches the
//! paper's "X and Toffoli gates" description.

use crate::circuit::Circuit;

/// Number of Grover iterations that maximizes success probability:
/// `floor(pi/4 * sqrt(2^n))`.
pub fn optimal_iterations(n_data: usize) -> usize {
    let n = (1u64 << n_data) as f64;
    ((std::f64::consts::PI / 4.0) * n.sqrt()).floor().max(1.0) as usize
}

/// The marked element for the paper's "find the square root" framing:
/// searching for `x` with `x * x = square mod 2^n` — we mark
/// `floor(sqrt(square))` directly, which is what the compiled oracle does.
pub fn sqrt_target(n_data: usize, square: u64) -> u64 {
    let mask = (1u64 << n_data) - 1;
    ((square as f64).sqrt().floor() as u64) & mask
}

/// Compact Grover circuit using native multi-controlled Z (no ancillas).
///
/// Qubit layout: `n_data` data qubits, nothing else. Gate count is
/// `O(iterations * n_data)`.
pub fn grover_circuit(n_data: usize, target: u64, iterations: usize) -> Circuit {
    assert!(n_data >= 2, "grover needs at least 2 data qubits");
    assert!(target < (1u64 << n_data));
    let mut c = Circuit::new(n_data);
    // Uniform superposition.
    for q in 0..n_data {
        c.h(q);
    }
    let controls: Vec<usize> = (0..n_data - 1).collect();
    for _ in 0..iterations {
        // Oracle: phase-flip |target>. X-conjugate the zero bits, then MCZ.
        for q in 0..n_data {
            if target >> q & 1 == 0 {
                c.x(q);
            }
        }
        c.mcz(&controls, n_data - 1);
        for q in 0..n_data {
            if target >> q & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion: H X (MCZ) X H.
        for q in 0..n_data {
            c.h(q);
        }
        for q in 0..n_data {
            c.x(q);
        }
        c.mcz(&controls, n_data - 1);
        for q in 0..n_data {
            c.x(q);
        }
        for q in 0..n_data {
            c.h(q);
        }
    }
    c
}

/// Grover circuit whose multi-controlled Z gates are decomposed into a
/// Toffoli ladder over ancilla qubits (the paper's "oracle consists of X
/// and Toffoli gates").
///
/// Layout: data qubits `0..n_data`, ancillas `n_data..n_data + n_data - 2`.
/// The MCZ over `n_data` qubits becomes `2(n_data - 2)` Toffolis plus one
/// CZ, computed and uncomputed around the phase flip.
pub fn grover_circuit_toffoli(n_data: usize, target: u64, iterations: usize) -> Circuit {
    assert!(n_data >= 3, "toffoli-ladder grover needs >= 3 data qubits");
    assert!(target < (1u64 << n_data));
    let n_anc = n_data - 2;
    let total = n_data + n_anc;
    let mut c = Circuit::new(total);
    let anc = |i: usize| n_data + i;

    let mcz_ladder = |c: &mut Circuit| {
        // AND-accumulate controls 0..n_data-1 into ancillas.
        c.ccx(0, 1, anc(0));
        for i in 0..n_anc - 1 {
            c.ccx(2 + i, anc(i), anc(i + 1));
        }
        // Phase flip conditioned on the final ancilla and the last data
        // qubit: controlled-Z.
        c.cz(anc(n_anc - 1), n_data - 1);
        // Uncompute.
        for i in (0..n_anc - 1).rev() {
            c.ccx(2 + i, anc(i), anc(i + 1));
        }
        c.ccx(0, 1, anc(0));
    };

    for q in 0..n_data {
        c.h(q);
    }
    for _ in 0..iterations {
        for q in 0..n_data {
            if target >> q & 1 == 0 {
                c.x(q);
            }
        }
        mcz_ladder(&mut c);
        for q in 0..n_data {
            if target >> q & 1 == 0 {
                c.x(q);
            }
        }
        for q in 0..n_data {
            c.h(q);
        }
        for q in 0..n_data {
            c.x(q);
        }
        mcz_ladder(&mut c);
        for q in 0..n_data {
            c.x(q);
        }
        for q in 0..n_data {
            c.h(q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimal_iteration_counts() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(4), 3);
        assert_eq!(optimal_iterations(8), 12);
    }

    #[test]
    fn sqrt_target_examples() {
        assert_eq!(sqrt_target(4, 9), 3);
        assert_eq!(sqrt_target(4, 16), 4);
        assert_eq!(sqrt_target(4, 17), 4);
    }

    #[test]
    fn grover_amplifies_target() {
        let n = 6;
        let target = 0b101101 & ((1 << n) - 1);
        let c = grover_circuit(n, target, optimal_iterations(n));
        let mut rng = StdRng::seed_from_u64(1);
        let s = c.simulate_dense(&mut rng);
        let p = s.probabilities()[target as usize];
        assert!(p > 0.95, "target probability {p} too low");
    }

    #[test]
    fn toffoli_variant_matches_compact_variant() {
        let n = 4;
        let target = 0b0110;
        let iters = optimal_iterations(n);
        let mut rng = StdRng::seed_from_u64(2);
        let compact = grover_circuit(n, target, iters).simulate_dense(&mut rng);
        let ladder = grover_circuit_toffoli(n, target, iters).simulate_dense(&mut rng);
        // Compare data-qubit marginals: ancillas are restored to |0>, so the
        // ladder state is the compact state tensor |0...0>.
        let pl = ladder.probabilities();
        let pc = compact.probabilities();
        for (i, &p) in pc.iter().enumerate() {
            assert!((pl[i] - p).abs() < 1e-9, "index {i}: {p} vs {}", pl[i]);
        }
        // All other (ancilla != 0) probabilities vanish.
        let rest: f64 = pl[pc.len()..].iter().sum();
        assert!(rest < 1e-9);
    }

    #[test]
    fn gate_census_is_x_toffoli_heavy() {
        let c = grover_circuit_toffoli(5, 0b10011, 2);
        use crate::circuit::Op;
        let mut tof = 0;
        let mut x = 0;
        for op in c.ops() {
            match op {
                Op::MultiControlled { controls, .. } if controls.len() == 2 => tof += 1,
                Op::Single {
                    gate: qcs_statevec::GateKind::X,
                    ..
                } => x += 1,
                _ => {}
            }
        }
        assert!(tof > 0 && x > 0);
    }
}
