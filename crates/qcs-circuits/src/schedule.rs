//! Circuit-level batch scheduler: single-qubit gate fusion and intra-block
//! gate batching.
//!
//! In the compressed-block simulator the dominant per-gate cost is the
//! decompress → compute → recompress cycle (paper Table 2: the compression
//! and decompression rows dwarf computation). Two circuit-level rewrites
//! amortize that cycle without changing the simulated state:
//!
//! 1. **Fusion** — a run of consecutive single-qubit gates on the same
//!    qubit collapses into one [`FusedGate`] whose matrix is the product of
//!    the run (`G_k ... G_2 G_1`). `k` gates then cost one cycle instead of
//!    `k`.
//! 2. **Batching** — consecutive gates whose *targets* all route to the
//!    intra-block case of §3.3 (target qubit below `block_log2`) share the
//!    same block-touch pattern: every block is touched exactly once, with
//!    no data flow between blocks. Such runs group into a [`GateBatch`] so
//!    the engine decompresses each block once per batch and applies every
//!    batched gate to the scratch buffer before recompressing.
//!
//! The scheduler is strictly order-preserving: every [`ScheduledOp`] covers
//! a contiguous range of source-op indices and the ranges partition
//! `0..circuit.gate_count()` in order. Fusion therefore never commutes a
//! gate across a two-qubit, controlled, swap, or measurement operation —
//! the invariant the property suite in `tests/prop_fusion.rs` pins down.
//!
//! Because the schedule fixes the execution order, it also fixes *which
//! blocks* every wave will touch once a block geometry is chosen: an
//! [`AccessPlan`] derives, per wave and per rank, the ordered block-slot
//! list ahead of execution. The engine's out-of-core tier uses the plan to
//! prefetch the next chunk of spilled blocks while the current chunk
//! computes, turning blocking seek-and-read fetches into overlapped
//! background I/O.

use crate::circuit::{Circuit, Op};
use qcs_statevec::{BatchGate, StateVector};

/// Upper limit on gates per batch: the engine tracks which batch members
/// apply to a given block in a 64-bit selection mask.
pub const MAX_BATCH_GATES: usize = 64;

/// FNV-style signature mixer shared by the scheduler and the engine's
/// cache-key derivation (batch signature ⊕ per-block selection mask): both
/// sides must use the same mixing function for the documented key scheme to
/// stay coherent.
pub fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100000001b3)
}

/// Salt mixed into the signature chain when a second gate fuses into a run,
/// so a fused run can never collide with the raw op signature of a single
/// gate (cache-key soundness, paper §3.4).
const FUSE_SALT: u64 = 0xf0e1d2c3b4a59687;

/// Salt seeding a [`GateBatch`] signature, so a batch key can never collide
/// with an individual (fused or raw) gate key.
const BATCH_SALT: u64 = 0x1badb002deadbeef;

/// How the scheduler rewrites a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionPolicy {
    /// Fuse runs of consecutive single-qubit gates on the same qubit.
    pub fuse_single_qubit_runs: bool,
    /// Maximum gates per [`GateBatch`] (clamped to [`MAX_BATCH_GATES`]).
    /// `1` disables batching while keeping fusion.
    pub max_batch_gates: usize,
    /// `log2` of amplitudes per block: targets below this bit route
    /// intra-block and are eligible for batching.
    pub block_log2: u32,
    /// Re-orient diagonal controlled-phase gates (`diag(1, e^{i theta})`
    /// targets: Z, S, T, Phase) onto their lowest qubit. Such gates are
    /// symmetric under control/target exchange, so the QFT's
    /// high-target cphase cascades become intra-block (batchable) and
    /// rank-crossing phase gates stop paying communication.
    pub retarget_diagonal: bool,
}

impl FusionPolicy {
    /// Default policy for a given block size: fusion on, batches up to
    /// [`MAX_BATCH_GATES`], diagonal retargeting on.
    pub fn for_block(block_log2: u32) -> Self {
        Self {
            fuse_single_qubit_runs: true,
            max_batch_gates: MAX_BATCH_GATES,
            block_log2,
            retarget_diagonal: true,
        }
    }

    fn batch_cap(&self) -> usize {
        self.max_batch_gates.clamp(1, MAX_BATCH_GATES)
    }
}

/// True for matrices of the form `diag(1, lambda)` (bit-exact check): the
/// controlled gate then acts as a phase on the all-ones subspace, making
/// control and target roles interchangeable.
fn is_diagonal_phase(g: &qcs_statevec::Gate1) -> bool {
    use qcs_statevec::Complex64;
    g.m[0][0] == Complex64::ONE && g.m[0][1] == Complex64::ZERO && g.m[1][0] == Complex64::ZERO
}

/// Re-orient a controlled diagonal-phase gate onto its lowest qubit (a
/// no-op for other gates). Lower targets route cheaper: intra-block beats
/// inter-block beats inter-rank.
///
/// Total over every [`BatchGate`]: a gate with an empty controls list
/// (legal at construction — it degrades to the bare single-qubit gate)
/// has nothing to re-orient and passes through untouched.
fn retarget_diagonal(op: &mut BatchGate) {
    if !is_diagonal_phase(&op.gate) {
        return;
    }
    let lowest = match op.controls.iter().copied().min() {
        Some(c) => c.min(op.target),
        None => return,
    };
    if lowest == op.target {
        return;
    }
    for c in op.controls.iter_mut() {
        if *c == lowest {
            *c = op.target;
        }
    }
    op.target = lowest;
    op.controls.sort_unstable();
}

/// One (possibly fused) controlled single-qubit unitary plus the metadata
/// the engine's cache and the test suite need.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedGate {
    /// Matrix, controls and target in the form batched appliers consume.
    pub op: BatchGate,
    /// Stable cache signature. Equal to the source [`Op::signature`] for an
    /// unfused gate; a salted chain over the run for fused gates.
    pub signature: u64,
    /// Index of the first source op covered by this gate.
    pub src_start: usize,
    /// Number of consecutive source ops covered (1 for unfused gates).
    pub src_len: usize,
}

impl FusedGate {
    /// Number of source gates folded into this one.
    pub fn fused_count(&self) -> usize {
        self.src_len
    }
}

/// A group of consecutive intra-block gates the engine applies with one
/// decompress/recompress cycle per block.
#[derive(Debug, Clone, PartialEq)]
pub struct GateBatch {
    gates: Vec<FusedGate>,
    signature: u64,
}

impl GateBatch {
    fn new(gates: Vec<FusedGate>) -> Self {
        debug_assert!(!gates.is_empty() && gates.len() <= MAX_BATCH_GATES);
        let signature = gates.iter().fold(BATCH_SALT, |h, g| mix(h, g.signature));
        Self { gates, signature }
    }

    /// The batched gates, in program order.
    pub fn gates(&self) -> &[FusedGate] {
        &self.gates
    }

    /// Number of (fused) gates in the batch.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the batch holds no gates (never produced by the scheduler).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Combined cache signature of the whole batch. The engine mixes in the
    /// per-block selection mask before using it as a cache key.
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Total source ops covered by the batch.
    pub fn source_gate_count(&self) -> usize {
        self.gates.iter().map(|g| g.src_len).sum()
    }
}

/// One step of a scheduled circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduledOp {
    /// Two or more intra-block gates sharing one block-touch per block.
    Batch(GateBatch),
    /// A single (possibly fused) unitary applied on its own — its target
    /// routes inter-block/inter-rank, or no neighbor was batchable.
    Gate(FusedGate),
    /// An op the scheduler leaves untouched (swap, measurement).
    Bare {
        /// The source operation.
        op: Op,
        /// Its index in the source circuit.
        src: usize,
    },
}

impl ScheduledOp {
    /// Source-op index range `(start, len)` covered by this step.
    pub fn src_range(&self) -> (usize, usize) {
        match self {
            ScheduledOp::Batch(b) => {
                let first = &b.gates[0];
                (first.src_start, b.source_gate_count())
            }
            ScheduledOp::Gate(g) => (g.src_start, g.src_len),
            ScheduledOp::Bare { src, .. } => (*src, 1),
        }
    }
}

/// Aggregate statistics of a scheduling pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Ops in the source circuit.
    pub source_ops: usize,
    /// Unitaries after fusion (each covers >= 1 source ops).
    pub fused_gates: usize,
    /// Source gates eliminated by fusion (`source unitaries - fused_gates`).
    pub fusion_savings: usize,
    /// Number of [`GateBatch`]es emitted.
    pub batches: usize,
    /// Fused gates living inside batches.
    pub batched_gates: usize,
    /// Ops passed through unscheduled (swaps, measurements).
    pub bare_ops: usize,
    /// Largest batch emitted.
    pub max_batch_len: usize,
}

/// A scheduled circuit: an ordered list of [`ScheduledOp`]s equivalent to
/// the source circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    num_qubits: usize,
    items: Vec<ScheduledOp>,
    stats: ScheduleStats,
}

impl Schedule {
    /// Qubit count of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Scheduled steps in program order.
    pub fn items(&self) -> &[ScheduledOp] {
        &self.items
    }

    /// Scheduling statistics.
    pub fn stats(&self) -> ScheduleStats {
        self.stats
    }

    /// Execute on a dense state vector (the ground-truth replay used by the
    /// differential and property tests). `rng` drives measurements.
    pub fn run_dense(&self, state: &mut StateVector, rng: &mut impl rand::Rng) {
        assert_eq!(state.num_qubits(), self.num_qubits);
        for item in &self.items {
            match item {
                ScheduledOp::Batch(b) => {
                    for g in b.gates() {
                        apply_dense(&g.op, state);
                    }
                }
                ScheduledOp::Gate(g) => apply_dense(&g.op, state),
                ScheduledOp::Bare { op, .. } => match op {
                    Op::Swap { a, b } => state.apply_swap(*a, *b),
                    Op::Measure { target } => {
                        state.measure(*target, rng);
                    }
                    _ => unreachable!("unitaries are never scheduled bare"),
                },
            }
        }
    }

    /// Convenience: run from `|0...0>` and return the final state.
    pub fn simulate_dense(&self, rng: &mut impl rand::Rng) -> StateVector {
        let mut s = StateVector::zero_state(self.num_qubits);
        self.run_dense(&mut s, rng);
        s
    }
}

fn apply_dense(g: &BatchGate, state: &mut StateVector) {
    state.apply_batch(std::slice::from_ref(g));
}

/// Intermediate item between the fusion and batching passes.
enum PreItem {
    Gate(FusedGate),
    Other(Op, usize),
}

/// Schedule a circuit under `policy`: fuse single-qubit runs, then group
/// consecutive intra-block gates into batches.
pub fn schedule_circuit(circuit: &Circuit, policy: &FusionPolicy) -> Schedule {
    let mut pre: Vec<PreItem> = Vec::with_capacity(circuit.gate_count());
    let mut pending: Option<FusedGate> = None;
    let mut source_unitaries = 0usize;

    let flush = |pending: &mut Option<FusedGate>, pre: &mut Vec<PreItem>| {
        if let Some(g) = pending.take() {
            pre.push(PreItem::Gate(g));
        }
    };

    for (i, op) in circuit.ops().iter().enumerate() {
        match op {
            Op::Single { gate, target } => {
                source_unitaries += 1;
                match &mut pending {
                    Some(run)
                        if policy.fuse_single_qubit_runs
                            && run.op.controls.is_empty()
                            && run.op.target == *target =>
                    {
                        // Later gate multiplies from the left: |s'> = G2 G1 |s>.
                        run.op.gate = gate.matrix().matmul(&run.op.gate);
                        run.signature = mix(mix(run.signature, FUSE_SALT), op.signature());
                        run.src_len += 1;
                    }
                    _ => {
                        flush(&mut pending, &mut pre);
                        pending = Some(FusedGate {
                            op: BatchGate::new(gate.matrix(), *target),
                            signature: op.signature(),
                            src_start: i,
                            src_len: 1,
                        });
                    }
                }
            }
            Op::Controlled {
                gate,
                control,
                target,
            } => {
                source_unitaries += 1;
                flush(&mut pending, &mut pre);
                let mut bg = BatchGate::controlled(gate.matrix(), vec![*control], *target);
                if policy.retarget_diagonal {
                    retarget_diagonal(&mut bg);
                }
                pre.push(PreItem::Gate(FusedGate {
                    op: bg,
                    signature: op.signature(),
                    src_start: i,
                    src_len: 1,
                }));
            }
            Op::MultiControlled {
                gate,
                controls,
                target,
            } => {
                source_unitaries += 1;
                flush(&mut pending, &mut pre);
                let mut bg = BatchGate::controlled(gate.matrix(), controls.clone(), *target);
                if policy.retarget_diagonal {
                    retarget_diagonal(&mut bg);
                }
                pre.push(PreItem::Gate(FusedGate {
                    op: bg,
                    signature: op.signature(),
                    src_start: i,
                    src_len: 1,
                }));
            }
            Op::Swap { .. } | Op::Measure { .. } => {
                flush(&mut pending, &mut pre);
                pre.push(PreItem::Other(op.clone(), i));
            }
        }
    }
    flush(&mut pending, &mut pre);

    // Batching pass: group consecutive intra-block gates.
    let cap = policy.batch_cap();
    let mut items: Vec<ScheduledOp> = Vec::with_capacity(pre.len());
    let mut stats = ScheduleStats {
        source_ops: circuit.gate_count(),
        ..ScheduleStats::default()
    };
    let mut run: Vec<FusedGate> = Vec::new();
    let close_run =
        |run: &mut Vec<FusedGate>, items: &mut Vec<ScheduledOp>, stats: &mut ScheduleStats| {
            match run.len() {
                0 => {}
                1 => items.push(ScheduledOp::Gate(run.pop().expect("len 1"))),
                n => {
                    stats.batches += 1;
                    stats.batched_gates += n;
                    stats.max_batch_len = stats.max_batch_len.max(n);
                    items.push(ScheduledOp::Batch(GateBatch::new(std::mem::take(run))));
                }
            }
        };

    for item in pre {
        match item {
            PreItem::Gate(g) => {
                stats.fused_gates += 1;
                if (g.op.target as u32) < policy.block_log2 && cap > 1 {
                    if run.len() >= cap {
                        close_run(&mut run, &mut items, &mut stats);
                    }
                    run.push(g);
                } else {
                    close_run(&mut run, &mut items, &mut stats);
                    items.push(ScheduledOp::Gate(g));
                }
            }
            PreItem::Other(op, src) => {
                close_run(&mut run, &mut items, &mut stats);
                stats.bare_ops += 1;
                items.push(ScheduledOp::Bare { op, src });
            }
        }
    }
    close_run(&mut run, &mut items, &mut stats);
    stats.fusion_savings = source_unitaries - stats.fused_gates;

    Schedule {
        num_qubits: circuit.num_qubits(),
        items,
        stats,
    }
}

// ---------------------------------------------------------------------------
// Access planning
// ---------------------------------------------------------------------------

/// The ordered local block slots one wave touches on each rank.
///
/// `per_rank[r]` lists the block slots rank `r`'s wave loop reads, in the
/// exact order the engine's rank worker takes (or peeks) them: ascending
/// block index for in-block and batch waves, interleaved `[b, b|stride]`
/// pairs for inter-block waves, and the selected-block list (shared by the
/// leader and the follower of each rank pair) for inter-rank exchanges.
/// Ranks deselected by a rank-scope control get an empty list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveAccess {
    /// Ordered block slots per rank (index = rank).
    pub per_rank: Vec<Vec<usize>>,
}

impl WaveAccess {
    /// True when no rank touches any block in this wave.
    pub fn is_empty(&self) -> bool {
        self.per_rank.iter().all(|v| v.is_empty())
    }

    /// Position of the first planned access of `slot` in rank `rank`'s
    /// ordered wave sequence — the next-use distance a Belady (MIN)
    /// eviction policy keys on. `None` when the wave never touches `slot`
    /// on that rank (or the rank index is out of range), which MIN reads
    /// as "furthest away": the best possible eviction victim.
    pub fn next_use_distance(&self, rank: usize, slot: usize) -> Option<usize> {
        self.per_rank
            .get(rank)
            .and_then(|slots| slots.iter().position(|&s| s == slot))
    }
}

/// A schedule's block-access plan: for every wave of every scheduled item,
/// the ordered set of block slots each rank will touch.
///
/// Because a [`Schedule`] fixes the gate order and the block geometry
/// fixes §3.3 routing, the blocks every wave touches are known *before
/// execution* — the fact the out-of-core prefetch pipeline exploits: the
/// engine streams the next chunk's blocks off disk while the current
/// chunk computes, and hints each wave's store at the following wave's
/// first slots. Most items expand to exactly one wave; a bare `Swap`
/// expands to its three controlled-X waves and a bare `Measure` to its
/// probability-reduce (peek) wave followed by its collapse wave.
///
/// The plan is exact, not speculative: the engine's property suite pins
/// the planned slots against the accesses an instrumented block store
/// actually observes, for every circuit family and rank count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPlan {
    per_item: Vec<Vec<WaveAccess>>,
    ranks: usize,
}

/// Block-layout arithmetic shared by the wave builders (the same index
/// split as the engine's `Layout`, re-derived here so planning needs only
/// the schedule and two geometry exponents).
struct PlanGeom {
    num_qubits: u32,
    ranks_log2: u32,
    block_log2: u32,
}

impl PlanGeom {
    fn ranks(&self) -> usize {
        1usize << self.ranks_log2
    }

    fn blocks_per_rank(&self) -> usize {
        1usize << (self.num_qubits - self.ranks_log2 - self.block_log2)
    }

    /// First qubit index owned by the rank segment.
    fn rank_base(&self) -> u32 {
        self.num_qubits - self.ranks_log2
    }

    /// Partition `controls` into `(block_cmask, rank_cmask)`; offset-scope
    /// controls never affect which blocks a wave touches.
    fn masks(&self, controls: &[usize]) -> (usize, usize) {
        let mut block_cmask = 0usize;
        let mut rank_cmask = 0usize;
        for &c in controls {
            let c = c as u32;
            if c < self.block_log2 {
                // Offset scope: selects amplitudes inside every block.
            } else if c < self.rank_base() {
                block_cmask |= 1usize << (c - self.block_log2);
            } else {
                rank_cmask |= 1usize << (c - self.rank_base());
            }
        }
        (block_cmask, rank_cmask)
    }

    /// Access of one (possibly controlled) single-qubit gate wave.
    fn gate_wave(&self, target: usize, controls: &[usize]) -> WaveAccess {
        let (bcm, rcm) = self.masks(controls);
        let bpr = self.blocks_per_rank();
        let block_ok = |b: usize| b & bcm == bcm;
        let t = target as u32;
        let mut per_rank = vec![Vec::new(); self.ranks()];
        if t < self.block_log2 {
            let list: Vec<usize> = (0..bpr).filter(|&b| block_ok(b)).collect();
            for (r, slots) in per_rank.iter_mut().enumerate() {
                if r & rcm == rcm {
                    *slots = list.clone();
                }
            }
        } else if t < self.rank_base() {
            let stride = 1usize << (t - self.block_log2);
            let list: Vec<usize> = (0..bpr)
                .filter(|&b| b & stride == 0 && block_ok(b))
                .flat_map(|b| [b, b | stride])
                .collect();
            for (r, slots) in per_rank.iter_mut().enumerate() {
                if r & rcm == rcm {
                    *slots = list.clone();
                }
            }
        } else {
            let rstride = 1usize << (t - self.rank_base());
            let sel: Vec<usize> = (0..bpr).filter(|&b| block_ok(b)).collect();
            for r in 0..self.ranks() {
                if r & rstride == 0 && r & rcm == rcm {
                    per_rank[r] = sel.clone();
                    per_rank[r | rstride] = sel.clone();
                }
            }
        }
        WaveAccess { per_rank }
    }

    /// Access of a [`GateBatch`] wave: each rank touches, in ascending
    /// order, every block at least one member gate selects.
    fn batch_wave(&self, gates: &[FusedGate]) -> WaveAccess {
        let masks: Vec<(usize, usize)> = gates.iter().map(|g| self.masks(&g.op.controls)).collect();
        let bpr = self.blocks_per_rank();
        let per_rank = (0..self.ranks())
            .map(|r| {
                (0..bpr)
                    .filter(|&b| {
                        masks
                            .iter()
                            .any(|&(bcm, rcm)| r & rcm == rcm && b & bcm == bcm)
                    })
                    .collect()
            })
            .collect();
        WaveAccess { per_rank }
    }

    /// Access of a whole-state wave (collapse, recompress, probability
    /// reduce): every rank touches every block in ascending order.
    fn all_blocks_wave(&self) -> WaveAccess {
        let all: Vec<usize> = (0..self.blocks_per_rank()).collect();
        WaveAccess {
            per_rank: vec![all; self.ranks()],
        }
    }

    /// The waves one scheduled item expands into, in execution order.
    fn item_waves(&self, item: &ScheduledOp) -> Vec<WaveAccess> {
        match item {
            ScheduledOp::Batch(b) => vec![self.batch_wave(b.gates())],
            ScheduledOp::Gate(g) => vec![self.gate_wave(g.op.target, &g.op.controls)],
            ScheduledOp::Bare { op, .. } => match op {
                // The engine decomposes SWAP into three controlled-X
                // waves: CX(a,b); CX(b,a); CX(a,b).
                Op::Swap { a, b } => vec![
                    self.gate_wave(*b, &[*a]),
                    self.gate_wave(*a, &[*b]),
                    self.gate_wave(*b, &[*a]),
                ],
                // Measurement is a probability sum-reduce (peek of
                // every block) followed by a collapse rewrite of every
                // block, whatever the outcome.
                Op::Measure { .. } => vec![self.all_blocks_wave(), self.all_blocks_wave()],
                _ => unreachable!("unitaries are never scheduled bare"),
            },
        }
    }
}

impl AccessPlan {
    /// Plan the block accesses of every wave of `schedule` under the given
    /// block geometry (`2^ranks_log2` ranks, `2^block_log2` amplitudes per
    /// block — the same exponents as the engine's `SimConfig`).
    ///
    /// # Panics
    ///
    /// Panics when the geometry does not fit the schedule's qubit count
    /// (`num_qubits < ranks_log2 + block_log2`).
    pub fn for_schedule(schedule: &Schedule, ranks_log2: u32, block_log2: u32) -> Self {
        let n = schedule.num_qubits() as u32;
        assert!(
            n >= ranks_log2 + block_log2,
            "cannot split 2^{n} amplitudes into 2^{ranks_log2} ranks x 2^{block_log2} amp blocks"
        );
        let geom = PlanGeom {
            num_qubits: n,
            ranks_log2,
            block_log2,
        };
        let per_item = schedule
            .items()
            .iter()
            .map(|item| geom.item_waves(item))
            .collect();
        Self {
            per_item,
            ranks: geom.ranks(),
        }
    }

    /// Plan a single scheduled item without materializing a whole-schedule
    /// plan — what the engine uses to derive each wave's lookahead lazily,
    /// so planning memory stays proportional to one item rather than
    /// `O(items × ranks × blocks_per_rank)`.
    ///
    /// # Panics
    ///
    /// Panics when the geometry does not fit `num_qubits` (see
    /// [`AccessPlan::for_schedule`]).
    pub fn for_item(
        item: &ScheduledOp,
        num_qubits: u32,
        ranks_log2: u32,
        block_log2: u32,
    ) -> Vec<WaveAccess> {
        assert!(
            num_qubits >= ranks_log2 + block_log2,
            "cannot split 2^{num_qubits} amplitudes into 2^{ranks_log2} ranks x \
             2^{block_log2} amp blocks"
        );
        PlanGeom {
            num_qubits,
            ranks_log2,
            block_log2,
        }
        .item_waves(item)
    }

    /// Number of scheduled items covered (equal to `schedule.items().len()`).
    pub fn len(&self) -> usize {
        self.per_item.len()
    }

    /// True when the schedule had no items.
    pub fn is_empty(&self) -> bool {
        self.per_item.is_empty()
    }

    /// Rank count the plan was built for.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The waves of scheduled item `item`, in execution order.
    pub fn item_waves(&self, item: usize) -> &[WaveAccess] {
        &self.per_item[item]
    }

    /// The first non-empty wave at or after scheduled item `item` — what a
    /// wave finishing item `item - 1` should hint its stores to prefetch.
    pub fn first_wave_at(&self, item: usize) -> Option<&WaveAccess> {
        self.per_item[item.min(self.per_item.len())..]
            .iter()
            .flatten()
            .find(|w| !w.is_empty())
    }

    /// Rank `rank`'s planned accesses from scheduled item `from_item`
    /// onward, flattened across waves in execution order — the exact
    /// future-reference trace a Belady (MIN) eviction policy consumes.
    pub fn rank_access_order(&self, rank: usize, from_item: usize) -> Vec<usize> {
        self.per_item[from_item.min(self.per_item.len())..]
            .iter()
            .flatten()
            .flat_map(|w| w.per_rank.get(rank).map(|v| v.as_slice()).unwrap_or(&[]))
            .copied()
            .collect()
    }

    /// Next-use distance of `slot` on rank `rank`, counted in planned
    /// accesses starting at scheduled item `from_item`: the number of
    /// planned block touches before the slot is needed again. `None` when
    /// the remaining plan never touches the slot — the "furthest away"
    /// answer MIN evicts first.
    pub fn next_use_distance(&self, rank: usize, from_item: usize, slot: usize) -> Option<usize> {
        self.per_item[from_item.min(self.per_item.len())..]
            .iter()
            .flatten()
            .flat_map(|w| w.per_rank.get(rank).map(|v| v.as_slice()).unwrap_or(&[]))
            .position(|&s| s == slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_statevec::Gate1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fidelity(a: &StateVector, b: &StateVector) -> f64 {
        a.fidelity(b)
    }

    #[test]
    fn fuses_consecutive_singles_on_same_qubit() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).sx(0).h(1);
        let s = schedule_circuit(&c, &FusionPolicy::for_block(0));
        // H;T;SX on q0 fuse into one gate; H on q1 stays separate.
        assert_eq!(s.stats().fused_gates, 2);
        assert_eq!(s.stats().fusion_savings, 2);
        let g = match &s.items()[0] {
            ScheduledOp::Gate(g) => g,
            other => panic!("expected gate, got {other:?}"),
        };
        assert_eq!(g.fused_count(), 3);
        assert!(g.op.gate.is_unitary(1e-12));
    }

    #[test]
    fn fusion_respects_intervening_ops() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0);
        let s = schedule_circuit(&c, &FusionPolicy::for_block(0));
        // CX on qubit 0 blocks the H/T fusion.
        assert_eq!(s.stats().fused_gates, 3);
        assert_eq!(s.stats().fusion_savings, 0);
    }

    #[test]
    fn batches_intra_block_runs() {
        // block_log2 = 2: qubits 0-1 are intra-block.
        let mut c = Circuit::new(4);
        c.h(0).t(1).cx(0, 1).h(3).h(0);
        let s = schedule_circuit(&c, &FusionPolicy::for_block(2));
        // [h0, t1, cx(0,1)] batch; h3 alone (out of block); h0 alone.
        let kinds: Vec<&str> = s
            .items()
            .iter()
            .map(|i| match i {
                ScheduledOp::Batch(_) => "batch",
                ScheduledOp::Gate(_) => "gate",
                ScheduledOp::Bare { .. } => "bare",
            })
            .collect();
        assert_eq!(kinds, ["batch", "gate", "gate"]);
        let b = match &s.items()[0] {
            ScheduledOp::Batch(b) => b,
            _ => unreachable!(),
        };
        assert_eq!(b.len(), 3);
        assert_eq!(s.stats().batches, 1);
        assert_eq!(s.stats().max_batch_len, 3);
    }

    #[test]
    fn batch_cap_splits_long_runs() {
        let mut c = Circuit::new(2);
        for i in 0..10 {
            // Alternate qubits so fusion cannot collapse the run.
            c.rz(0.1 * i as f64, i % 2);
        }
        let policy = FusionPolicy {
            max_batch_gates: 4,
            block_log2: 2,
            ..FusionPolicy::for_block(2)
        };
        let s = schedule_circuit(&c, &policy);
        assert_eq!(s.stats().batches, 3); // 4 + 4 + 2
        assert_eq!(s.stats().max_batch_len, 4);
    }

    #[test]
    fn source_ranges_partition_the_circuit() {
        let mut c = Circuit::new(4);
        c.h(0).t(0).cx(0, 2).swap(1, 3).x(1).y(1).measure(0).h(2);
        let s = schedule_circuit(&c, &FusionPolicy::for_block(2));
        let mut next = 0usize;
        for item in s.items() {
            let (start, len) = item.src_range();
            assert_eq!(start, next, "gap or reorder at {item:?}");
            next = start + len;
        }
        assert_eq!(next, c.gate_count());
    }

    #[test]
    fn scheduled_replay_matches_direct_execution() {
        let mut c = Circuit::new(5);
        c.h(0).t(0).h(1).cx(0, 3).rz(0.3, 3).rz(0.4, 3).ccx(0, 1, 4);
        c.swap(2, 4).sx(2).sy(2).cphase(0.9, 1, 2);
        for block_log2 in [0u32, 2, 5] {
            let s = schedule_circuit(&c, &FusionPolicy::for_block(block_log2));
            let mut rng1 = StdRng::seed_from_u64(7);
            let mut rng2 = StdRng::seed_from_u64(7);
            let direct = c.simulate_dense(&mut rng1);
            let scheduled = s.simulate_dense(&mut rng2);
            assert!(
                fidelity(&direct, &scheduled) > 1.0 - 1e-12,
                "block_log2={block_log2}"
            );
        }
    }

    #[test]
    fn fused_signature_differs_from_raw_and_orders_matter() {
        let mut ht = Circuit::new(1);
        ht.h(0).t(0);
        let mut th = Circuit::new(1);
        th.t(0).h(0);
        let p = FusionPolicy::for_block(0);
        let sig = |c: &Circuit| match &schedule_circuit(c, &p).items()[0] {
            ScheduledOp::Gate(g) => g.signature,
            _ => unreachable!(),
        };
        let (s_ht, s_th) = (sig(&ht), sig(&th));
        assert_ne!(s_ht, s_th, "fusion order must be part of the signature");
        let mut h = Circuit::new(1);
        h.h(0);
        assert_ne!(s_ht, sig(&h));
        assert_ne!(s_th, sig(&h));
        // Unfused single gates keep the raw op signature for cache
        // compatibility with the per-op path.
        assert_eq!(sig(&h), h.ops()[0].signature());
    }

    #[test]
    fn batch_signature_distinct_from_member_signatures() {
        let mut c = Circuit::new(2);
        c.h(0).t(1);
        let s = schedule_circuit(&c, &FusionPolicy::for_block(2));
        let b = match &s.items()[0] {
            ScheduledOp::Batch(b) => b,
            _ => unreachable!(),
        };
        for g in b.gates() {
            assert_ne!(b.signature(), g.signature);
        }
        assert_eq!(b.source_gate_count(), 2);
    }

    #[test]
    fn diagonal_controlled_gates_retarget_to_lowest_qubit() {
        use qcs_statevec::GateKind;
        let mut c = Circuit::new(8);
        c.cphase(0.7, 1, 6); // symmetric: should re-orient onto qubit 1
        c.cz(7, 2); // symmetric: onto qubit 2
        c.cx(5, 0); // X is not diagonal: must keep target 0 / control 5
        c.push(Op::Controlled {
            gate: GateKind::Rz(0.4), // diag but m00 != 1: not symmetric
            control: 6,
            target: 3,
        });
        c.mcz(&[4, 6], 7); // multi-controlled Z: onto qubit 4
        let s = schedule_circuit(&c, &FusionPolicy::for_block(3));
        let gates: Vec<&FusedGate> = s
            .items()
            .iter()
            .flat_map(|i| match i {
                ScheduledOp::Batch(b) => b.gates().iter().collect::<Vec<_>>(),
                ScheduledOp::Gate(g) => vec![g],
                ScheduledOp::Bare { .. } => vec![],
            })
            .collect();
        let tc: Vec<(usize, Vec<usize>)> = gates
            .iter()
            .map(|g| (g.op.target, g.op.controls.clone()))
            .collect();
        assert_eq!(
            tc,
            vec![
                (1, vec![6]),
                (2, vec![7]),
                (0, vec![5]),
                (3, vec![6]),
                (4, vec![6, 7]),
            ]
        );
        // Retargeted circuits stay observationally identical.
        let mut rng1 = StdRng::seed_from_u64(0);
        let mut rng2 = StdRng::seed_from_u64(0);
        let direct = {
            let mut st = StateVector::zero_state(8);
            for q in 0..8 {
                st.apply_gate(&Gate1::h(), q);
            }
            c.run_dense(&mut st, &mut rng1);
            st
        };
        let scheduled = {
            let mut st = StateVector::zero_state(8);
            for q in 0..8 {
                st.apply_gate(&Gate1::h(), q);
            }
            s.run_dense(&mut st, &mut rng2);
            st
        };
        assert!(fidelity(&direct, &scheduled) > 1.0 - 1e-12);
    }

    #[test]
    fn empty_controls_list_degrades_to_single_qubit() {
        use qcs_statevec::GateKind;
        // A MultiControlled op with zero controls is legal at construction
        // and must schedule as the bare single-qubit gate — in particular
        // the diagonal-retarget pass must not assume a non-empty list.
        let mut bare = qcs_statevec::BatchGate::controlled(Gate1::t(), vec![], 3);
        retarget_diagonal(&mut bare);
        assert_eq!((bare.target, bare.controls.as_slice()), (3, &[][..]));

        let mut c = Circuit::new(5);
        c.push(Op::MultiControlled {
            gate: GateKind::T, // diagonal phase: exercises the retarget pass
            controls: vec![],
            target: 4,
        });
        let s = schedule_circuit(&c, &FusionPolicy::for_block(2));
        let g = match &s.items()[0] {
            ScheduledOp::Gate(g) => g,
            other => panic!("expected a plain gate, got {other:?}"),
        };
        assert_eq!((g.op.target, g.op.controls.as_slice()), (4, &[][..]));

        // Observationally identical to the plain T on qubit 4.
        let mut rng = StdRng::seed_from_u64(0);
        let mut direct = StateVector::zero_state(5);
        for q in 0..5 {
            direct.apply_gate(&Gate1::h(), q);
        }
        let mut scheduled = direct.clone();
        direct.apply_gate(&Gate1::t(), 4);
        s.run_dense(&mut scheduled, &mut rng);
        assert!(fidelity(&direct, &scheduled) > 1.0 - 1e-12);
    }

    #[test]
    fn access_plan_routes_all_three_cases() {
        // n=6, ranks=2^1, block=2^2: offsets 0-1, block bits 2-4, rank bit 5.
        let mut c = Circuit::new(6);
        c.h(0); // in-block: every block on every rank
        c.h(3); // inter-block, stride 2: interleaved pairs
        c.h(5); // inter-rank: rank 0 leads, rank 1 follows, same blocks
        let s = schedule_circuit(&c, &FusionPolicy::for_block(2));
        let plan = AccessPlan::for_schedule(&s, 1, 2);
        assert_eq!(plan.len(), s.items().len());
        assert_eq!(plan.ranks(), 2);
        let waves: Vec<&WaveAccess> = (0..plan.len()).flat_map(|i| plan.item_waves(i)).collect();
        assert_eq!(waves.len(), 3);
        // h(0): all 8 blocks, ascending, both ranks.
        let all: Vec<usize> = (0..8).collect();
        assert_eq!(waves[0].per_rank, vec![all.clone(), all]);
        // h(3): stride 2 pairs in take order a1,b1,a2,b2,...
        let pairs = vec![0, 2, 1, 3, 4, 6, 5, 7];
        assert_eq!(waves[1].per_rank, vec![pairs.clone(), pairs]);
        // h(5): the exchange pair shares the full selected-block list.
        let sel: Vec<usize> = (0..8).collect();
        assert_eq!(waves[2].per_rank, vec![sel.clone(), sel]);
    }

    #[test]
    fn access_plan_honors_block_and_rank_controls() {
        // n=6, ranks=2^1, block=2^2: qubit 3 is block bit 1, qubit 5 the
        // rank bit.
        let mut c = Circuit::new(6);
        c.cx(3, 0); // block-scope control: only blocks with bit 1 set
        c.cx(5, 0); // rank-scope control: only rank 1 touches blocks
        let s = schedule_circuit(&c, &FusionPolicy::for_block(2));
        let plan = AccessPlan::for_schedule(&s, 1, 2);
        let waves: Vec<&WaveAccess> = (0..plan.len()).flat_map(|i| plan.item_waves(i)).collect();
        // The two CX gates batch together (both target qubit 0): the batch
        // wave is the union of the two selections per rank.
        assert_eq!(waves.len(), 1);
        assert_eq!(
            waves[0].per_rank[0],
            vec![2, 3, 6, 7],
            "rank 0: block-control only"
        );
        assert_eq!(
            waves[0].per_rank[1],
            vec![0, 1, 2, 3, 4, 5, 6, 7],
            "rank 1: both gates"
        );
    }

    #[test]
    fn access_plan_expands_bare_ops() {
        let mut c = Circuit::new(4);
        c.swap(0, 1).measure(2);
        let s = schedule_circuit(&c, &FusionPolicy::for_block(2));
        let plan = AccessPlan::for_schedule(&s, 0, 2);
        assert_eq!(plan.item_waves(0).len(), 3, "swap = three CX waves");
        assert_eq!(plan.item_waves(1).len(), 2, "measure = reduce + collapse");
        for w in plan.item_waves(1) {
            assert_eq!(w.per_rank, vec![vec![0, 1, 2, 3]]);
        }
        // Lookahead helper: the first non-empty wave at or after an item.
        assert_eq!(plan.first_wave_at(0), Some(&plan.item_waves(0)[0]));
        assert_eq!(plan.first_wave_at(1), Some(&plan.item_waves(1)[0]));
        assert_eq!(plan.first_wave_at(2), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn fused_matrix_is_the_ordered_product() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let s = schedule_circuit(&c, &FusionPolicy::for_block(0));
        let g = match &s.items()[0] {
            ScheduledOp::Gate(g) => g,
            _ => unreachable!(),
        };
        let expect = Gate1::t().matmul(&Gate1::h());
        for r in 0..2 {
            for col in 0..2 {
                assert!(g.op.gate.m[r][col].approx_eq(expect.m[r][col], 1e-15));
            }
        }
    }
}
