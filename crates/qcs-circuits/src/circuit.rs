//! Circuit intermediate representation shared by the dense and compressed
//! simulators.

use qcs_statevec::{GateKind, StateVector};

/// One operation in a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Single-qubit gate on `target`.
    Single {
        /// Gate to apply.
        gate: GateKind,
        /// Target qubit.
        target: usize,
    },
    /// Controlled single-qubit gate (Eq. 7): applied where `control` is 1.
    Controlled {
        /// Gate to apply on the target.
        gate: GateKind,
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Multi-controlled single-qubit gate (e.g. Toffoli = controls x2 + X).
    MultiControlled {
        /// Gate to apply on the target.
        gate: GateKind,
        /// Control qubits (all must be 1).
        controls: Vec<usize>,
        /// Target qubit.
        target: usize,
    },
    /// Swap two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Intermediate measurement of one qubit in the computational basis,
    /// collapsing the state (the capability the paper argues full-state
    /// simulation enables, §1).
    Measure {
        /// Measured qubit.
        target: usize,
    },
}

impl Op {
    /// Highest qubit index referenced.
    pub fn max_qubit(&self) -> usize {
        match self {
            Op::Single { target, .. } => *target,
            Op::Controlled {
                control, target, ..
            } => (*control).max(*target),
            Op::MultiControlled {
                controls, target, ..
            } => controls.iter().copied().max().unwrap_or(0).max(*target),
            Op::Swap { a, b } => (*a).max(*b),
            Op::Measure { target } => *target,
        }
    }

    /// Stable signature for cache keys: combines gate kind, parameters and
    /// qubit roles (paper §3.4, the `OP` field of a cache line).
    pub fn signature(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100000001b3)
        }
        let mut h = 0xcbf29ce484222325u64;
        match self {
            Op::Single { gate, target } => {
                h = mix(h, 1);
                h = mix(h, gate.signature());
                h = mix(h, *target as u64);
            }
            Op::Controlled {
                gate,
                control,
                target,
            } => {
                h = mix(h, 2);
                h = mix(h, gate.signature());
                h = mix(h, *control as u64);
                h = mix(h, *target as u64);
            }
            Op::MultiControlled {
                gate,
                controls,
                target,
            } => {
                h = mix(h, 3);
                h = mix(h, gate.signature());
                for c in controls {
                    h = mix(h, *c as u64);
                }
                h = mix(h, *target as u64);
            }
            Op::Swap { a, b } => {
                h = mix(h, 4);
                h = mix(h, *a as u64);
                h = mix(h, *b as u64);
            }
            Op::Measure { target } => {
                h = mix(h, 5);
                h = mix(h, *target as u64);
            }
        }
        h
    }
}

/// A quantum circuit: a qubit count and an ordered list of operations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Empty circuit on `num_qubits`.
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits >= 1);
        Self {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Operations in order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Gate count (the paper's "Number of Gates" row counts every op).
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Push a raw op, validating qubit indices.
    pub fn push(&mut self, op: Op) -> &mut Self {
        assert!(
            op.max_qubit() < self.num_qubits,
            "op {op:?} out of range for {} qubits",
            self.num_qubits
        );
        if let Op::MultiControlled {
            controls, target, ..
        } = &op
        {
            let mut seen = controls.clone();
            seen.push(*target);
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), controls.len() + 1, "duplicate qubits in {op:?}");
        }
        self.ops.push(op);
        self
    }

    /// Append another circuit's ops.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.num_qubits, other.num_qubits);
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    // --- builder helpers ---

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::H,
            target: q,
        })
    }

    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::X,
            target: q,
        })
    }

    /// Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::Y,
            target: q,
        })
    }

    /// Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::Z,
            target: q,
        })
    }

    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::T,
            target: q,
        })
    }

    /// sqrt(X).
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::SqrtX,
            target: q,
        })
    }

    /// sqrt(Y).
    pub fn sy(&mut self, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::SqrtY,
            target: q,
        })
    }

    /// Rx rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::Rx(theta),
            target: q,
        })
    }

    /// Ry rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::Ry(theta),
            target: q,
        })
    }

    /// Rz rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Op::Single {
            gate: GateKind::Rz(theta),
            target: q,
        })
    }

    /// CNOT.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Op::Controlled {
            gate: GateKind::X,
            control,
            target,
        })
    }

    /// Controlled-Z.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Op::Controlled {
            gate: GateKind::Z,
            control,
            target,
        })
    }

    /// Controlled phase.
    pub fn cphase(&mut self, theta: f64, control: usize, target: usize) -> &mut Self {
        self.push(Op::Controlled {
            gate: GateKind::Phase(theta),
            control,
            target,
        })
    }

    /// Toffoli (CCX).
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.push(Op::MultiControlled {
            gate: GateKind::X,
            controls: vec![c1, c2],
            target,
        })
    }

    /// Multi-controlled Z.
    pub fn mcz(&mut self, controls: &[usize], target: usize) -> &mut Self {
        self.push(Op::MultiControlled {
            gate: GateKind::Z,
            controls: controls.to_vec(),
            target,
        })
    }

    /// Swap.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Op::Swap { a, b })
    }

    /// Intermediate measurement.
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.push(Op::Measure { target: q })
    }

    /// Execute on a dense state vector. Measurements consume `rng`.
    pub fn run_dense(&self, state: &mut StateVector, rng: &mut impl rand::Rng) {
        assert_eq!(state.num_qubits(), self.num_qubits);
        for op in &self.ops {
            match op {
                Op::Single { gate, target } => state.apply_gate(&gate.matrix(), *target),
                Op::Controlled {
                    gate,
                    control,
                    target,
                } => state.apply_controlled(&gate.matrix(), *control, *target),
                Op::MultiControlled {
                    gate,
                    controls,
                    target,
                } => state.apply_multi_controlled(&gate.matrix(), controls, *target),
                Op::Swap { a, b } => state.apply_swap(*a, *b),
                Op::Measure { target } => {
                    state.measure(*target, rng);
                }
            }
        }
    }

    /// Convenience: run from `|0...0>` and return the final state.
    pub fn simulate_dense(&self, rng: &mut impl rand::Rng) -> StateVector {
        let mut s = StateVector::zero_state(self.num_qubits);
        self.run_dense(&mut s, rng);
        s
    }

    /// Execute with a stochastic noise model (one quantum trajectory):
    /// the configured channel fires on each gate's qubits after the gate.
    /// This is the "modern noise simulation" the paper's conclusion
    /// contrasts with its compression-error noise idea (§6).
    pub fn run_dense_noisy(
        &self,
        state: &mut StateVector,
        noise: &qcs_statevec::NoiseModel,
        rng: &mut impl rand::Rng,
    ) {
        assert_eq!(state.num_qubits(), self.num_qubits);
        for op in &self.ops {
            match op {
                Op::Single { gate, target } => {
                    state.apply_gate(&gate.matrix(), *target);
                    if let Some(ch) = noise.after_single {
                        ch.apply(state, *target, rng);
                    }
                }
                Op::Controlled {
                    gate,
                    control,
                    target,
                } => {
                    state.apply_controlled(&gate.matrix(), *control, *target);
                    if let Some(ch) = noise.after_two {
                        ch.apply(state, *control, rng);
                        ch.apply(state, *target, rng);
                    }
                }
                Op::MultiControlled {
                    gate,
                    controls,
                    target,
                } => {
                    state.apply_multi_controlled(&gate.matrix(), controls, *target);
                    if let Some(ch) = noise.after_two {
                        for &q in controls {
                            ch.apply(state, q, rng);
                        }
                        ch.apply(state, *target, rng);
                    }
                }
                Op::Swap { a, b } => {
                    state.apply_swap(*a, *b);
                    if let Some(ch) = noise.after_two {
                        ch.apply(state, *a, rng);
                        ch.apply(state, *b, rng);
                    }
                }
                Op::Measure { target } => {
                    state.measure(*target, rng);
                }
            }
        }
    }

    /// Count of two-or-more-qubit operations (entangling gates).
    pub fn entangling_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    Op::Controlled { .. } | Op::MultiControlled { .. } | Op::Swap { .. }
                )
            })
            .count()
    }

    /// A crude depth estimate: greedy layering of non-overlapping ops.
    pub fn depth(&self) -> usize {
        let mut layers: Vec<Vec<usize>> = Vec::new(); // qubits busy per layer
        for op in &self.ops {
            let qubits: Vec<usize> = match op {
                Op::Single { target, .. } | Op::Measure { target } => vec![*target],
                Op::Controlled {
                    control, target, ..
                } => vec![*control, *target],
                Op::MultiControlled {
                    controls, target, ..
                } => {
                    let mut v = controls.clone();
                    v.push(*target);
                    v
                }
                Op::Swap { a, b } => vec![*a, *b],
            };
            // Greedy layering: place after the last layer that conflicts.
            let pos = layers
                .iter()
                .rposition(|layer| qubits.iter().any(|q| layer.contains(q)))
                .map(|p| p + 1)
                .unwrap_or(0);
            if pos == layers.len() {
                layers.push(qubits);
            } else {
                layers[pos].extend(qubits);
            }
        }
        layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_constructs_expected_ops() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).swap(1, 2).measure(0);
        assert_eq!(c.gate_count(), 5);
        assert_eq!(c.entangling_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Circuit::new(2).h(5);
    }

    #[test]
    #[should_panic(expected = "duplicate qubits")]
    fn duplicate_controls_rejected() {
        Circuit::new(3).push(Op::MultiControlled {
            gate: GateKind::X,
            controls: vec![1, 1],
            target: 2,
        });
    }

    #[test]
    fn bell_circuit_dense() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let s = c.simulate_dense(&mut rng);
        assert!((s.probabilities()[0] - 0.5).abs() < 1e-12);
        assert!((s.probabilities()[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ghz_with_intermediate_measure_collapses() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure(0);
        let mut rng = StdRng::seed_from_u64(123);
        let s = c.simulate_dense(&mut rng);
        let probs = s.probabilities();
        // After measuring qubit 0 of a GHZ state the survivors are 000 or 111.
        assert!(
            (probs[0] - 1.0).abs() < 1e-9 || (probs[7] - 1.0).abs() < 1e-9,
            "probs: {probs:?}"
        );
    }

    #[test]
    fn depth_of_parallel_layer_is_one() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        assert_eq!(c.depth(), 1);
        c.cx(0, 1);
        assert_eq!(c.depth(), 2);
        c.cx(2, 3);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn signature_stable_and_distinct() {
        let a = Op::Single {
            gate: GateKind::H,
            target: 0,
        };
        let b = Op::Single {
            gate: GateKind::H,
            target: 1,
        };
        assert_eq!(a.signature(), a.signature());
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.gate_count(), 2);
    }
}
