//! Google quantum-supremacy random circuit sampling benchmark (§5.3).
//!
//! Follows the construction rules of Boixo et al., "Characterizing quantum
//! supremacy in near-term devices" (ref. \[9\] of the paper): qubits on a 2D
//! grid, a cycle of eight staggered CZ patterns, and randomized single-qubit
//! gates from {T, sqrt(X), sqrt(Y)} subject to:
//!
//! 1. start with a layer of Hadamards;
//! 2. place a CZ pattern each clock cycle, cycling through the 8 patterns;
//! 3. a qubit gets a random single-qubit gate in cycle `t` only if it was
//!    acted on by a CZ in cycle `t-1` and is idle in cycle `t`;
//! 4. the *first* single-qubit gate on a qubit (after its initial H) is
//!    always a T gate;
//! 5. a randomly chosen gate must differ from the previous gate on that
//!    qubit; sqrt(X)/sqrt(Y) choices follow a seeded RNG.

use crate::circuit::Circuit;
use qcs_statevec::GateKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A rows x cols qubit grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
}

impl Grid {
    /// Construct a grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        Self { rows, cols }
    }

    /// Total qubits.
    pub fn num_qubits(&self) -> usize {
        self.rows * self.cols
    }

    /// Linear index of (row, col).
    pub fn index(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }
}

/// CZ pairs for pattern `p` (0..8) on `grid`, per the staggered layout of
/// Boixo et al.: alternating horizontal/vertical bond sub-lattices.
pub fn cz_pattern(grid: Grid, p: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let p = p % 8;
    if p < 4 {
        // Horizontal bonds: col parity and row offset select the sub-lattice.
        let (col_par, row_par) = match p {
            0 => (0, 0),
            1 => (1, 1),
            2 => (1, 0),
            _ => (0, 1),
        };
        for r in 0..grid.rows {
            if r % 2 != row_par {
                continue;
            }
            for c in (col_par..grid.cols.saturating_sub(1)).step_by(2) {
                pairs.push((grid.index(r, c), grid.index(r, c + 1)));
            }
        }
    } else {
        let (row_par, col_par) = match p {
            4 => (0, 0),
            5 => (1, 1),
            6 => (1, 0),
            _ => (0, 1),
        };
        for c in 0..grid.cols {
            if c % 2 != col_par {
                continue;
            }
            for r in (row_par..grid.rows.saturating_sub(1)).step_by(2) {
                pairs.push((grid.index(r, c), grid.index(r + 1, c)));
            }
        }
    }
    pairs
}

/// Build a random supremacy circuit of `depth` clock cycles (CZ layers)
/// after the initial Hadamard layer. `seed` fixes the single-qubit choices.
pub fn random_circuit(grid: Grid, depth: usize, seed: u64) -> Circuit {
    let n = grid.num_qubits();
    let mut c = Circuit::new(n);
    let mut rng = StdRng::seed_from_u64(seed);

    for q in 0..n {
        c.h(q);
    }

    // Per-qubit bookkeeping for rules 3-5.
    let mut had_cz_prev = vec![false; n];
    let mut had_any_single = vec![false; n];
    let mut last_gate: Vec<Option<u8>> = vec![None; n];

    for layer in 0..depth {
        let pairs = cz_pattern(grid, layer % 8);
        let mut in_cz = vec![false; n];
        for &(a, b) in &pairs {
            in_cz[a] = true;
            in_cz[b] = true;
        }
        // Rule 3: single-qubit gates on qubits idle now but CZ'd last cycle.
        for q in 0..n {
            if in_cz[q] || !had_cz_prev[q] {
                continue;
            }
            let gate_id: u8 = if !had_any_single[q] {
                0 // rule 4: first single-qubit gate is T
            } else {
                // rule 5: differ from the previous gate on this qubit.
                loop {
                    let g = rng.gen_range(0..3u8);
                    if Some(g) != last_gate[q] {
                        break g;
                    }
                }
            };
            let kind = match gate_id {
                0 => GateKind::T,
                1 => GateKind::SqrtX,
                _ => GateKind::SqrtY,
            };
            c.push(crate::circuit::Op::Single {
                gate: kind,
                target: q,
            });
            had_any_single[q] = true;
            last_gate[q] = Some(gate_id);
        }
        for &(a, b) in &pairs {
            c.cz(a, b);
        }
        had_cz_prev.copy_from_slice(&in_cz);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Op;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn patterns_cover_disjoint_pairs() {
        let grid = Grid::new(4, 5);
        for p in 0..8 {
            let pairs = cz_pattern(grid, p);
            let mut seen = std::collections::HashSet::new();
            for (a, b) in pairs {
                assert!(a < grid.num_qubits() && b < grid.num_qubits());
                assert!(seen.insert(a), "pattern {p} reuses qubit {a}");
                assert!(seen.insert(b), "pattern {p} reuses qubit {b}");
            }
        }
    }

    #[test]
    fn eight_patterns_cover_all_bonds() {
        let grid = Grid::new(3, 3);
        let mut bonds = std::collections::HashSet::new();
        for p in 0..8 {
            for (a, b) in cz_pattern(grid, p) {
                bonds.insert((a.min(b), a.max(b)));
            }
        }
        // 3x3 grid has 12 nearest-neighbor bonds.
        assert_eq!(bonds.len(), 12);
    }

    #[test]
    fn circuit_starts_with_hadamard_wall() {
        let grid = Grid::new(2, 3);
        let c = random_circuit(grid, 5, 99);
        for (i, op) in c.ops().iter().take(6).enumerate() {
            assert!(
                matches!(
                    op,
                    Op::Single {
                        gate: qcs_statevec::GateKind::H,
                        ..
                    }
                ),
                "op {i} is {op:?}"
            );
        }
    }

    #[test]
    fn first_single_qubit_gate_is_t() {
        let grid = Grid::new(3, 3);
        let c = random_circuit(grid, 8, 7);
        let mut first: Vec<Option<&'static str>> = vec![None; grid.num_qubits()];
        for op in c.ops().iter().skip(grid.num_qubits()) {
            if let Op::Single { gate, target } = op {
                if first[*target].is_none() {
                    first[*target] = Some(gate.name());
                }
            }
        }
        for f in first.into_iter().flatten() {
            assert_eq!(f, "t");
        }
    }

    #[test]
    fn no_repeated_gate_on_same_qubit() {
        let grid = Grid::new(3, 4);
        let c = random_circuit(grid, 16, 3);
        let mut last: Vec<Option<&'static str>> = vec![None; grid.num_qubits()];
        for op in c.ops().iter().skip(grid.num_qubits()) {
            if let Op::Single { gate, target } = op {
                assert_ne!(last[*target], Some(gate.name()), "qubit {target}");
                last[*target] = Some(gate.name());
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let grid = Grid::new(2, 4);
        let a = random_circuit(grid, 10, 42);
        let b = random_circuit(grid, 10, 42);
        assert_eq!(a.ops().len(), b.ops().len());
        assert_eq!(a, b);
        let c = random_circuit(grid, 10, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn depth11_circuit_simulates_and_spreads() {
        // Small 3x3 instance: the state should be close to fully spread.
        let grid = Grid::new(3, 3);
        let c = random_circuit(grid, 11, 5);
        let mut rng = StdRng::seed_from_u64(0);
        let s = c.simulate_dense(&mut rng);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        let nonzero = s.probabilities().iter().filter(|&&p| p > 1e-12).count();
        assert!(
            nonzero > 256,
            "random circuit should populate most amplitudes, got {nonzero}"
        );
    }
}
