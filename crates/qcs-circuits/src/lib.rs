//! # qcs-circuits
//!
//! Circuit IR and the paper's benchmark workload generators (§5.3):
//!
//! - [`grover`] — Grover's search with an X/Toffoli oracle;
//! - [`supremacy`] — Google random circuit sampling (Boixo et al. rules);
//! - [`qaoa`] — QAOA MAXCUT on random 4-regular graphs;
//! - [`qft`] — quantum Fourier transform with random-X input;
//! - [`hadamard_wall`] — the scaling micro-benchmark of §5.2 (one H per
//!   qubit).
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible.
//!
//! The [`schedule`] module hosts the batch scheduler: it fuses runs of
//! consecutive single-qubit gates and groups consecutive intra-block gates
//! into [`GateBatch`]es so the compressed engine decompresses each block
//! once per batch instead of once per gate.

#![warn(missing_docs)]

pub mod circuit;
pub mod graph;
pub mod grover;
pub mod phase_estimation;
pub mod qaoa;
pub mod qft;
pub mod schedule;
pub mod supremacy;

pub use circuit::{Circuit, Op};
pub use graph::{random_regular_graph, Graph};
pub use grover::{grover_circuit, grover_circuit_toffoli, optimal_iterations};
pub use phase_estimation::{bernstein_vazirani_circuit, phase_estimation_circuit};
pub use qaoa::{qaoa_circuit, QaoaParams};
pub use qft::{iqft_circuit, qft_benchmark_circuit, qft_circuit};
pub use schedule::{
    schedule_circuit, AccessPlan, FusedGate, FusionPolicy, GateBatch, Schedule, ScheduleStats,
    ScheduledOp, WaveAccess,
};
pub use supremacy::{cz_pattern, random_circuit, Grid};

/// The scalability micro-benchmark the paper uses in §5.2: apply one
/// Hadamard to every qubit.
pub fn hadamard_wall(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_wall_shape() {
        let c = hadamard_wall(7);
        assert_eq!(c.gate_count(), 7);
        assert_eq!(c.depth(), 1);
    }
}
