//! Random regular graph generation for the QAOA MAXCUT benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected graph as an edge list over `0..n` vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Vertex count.
    pub n: usize,
    /// Undirected edges, stored with `a < b`, deduplicated.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Degree of each vertex.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            d[a] += 1;
            d[b] += 1;
        }
        d
    }

    /// Cut value of an assignment given as a bitmask.
    pub fn cut_value(&self, assignment: u64) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| (assignment >> a) & 1 != (assignment >> b) & 1)
            .count()
    }

    /// Brute-force maximum cut (only for small `n`, used in tests).
    pub fn max_cut_brute_force(&self) -> (u64, usize) {
        assert!(self.n <= 24, "brute force only for small graphs");
        let mut best = (0u64, 0usize);
        for mask in 0..(1u64 << self.n) {
            let v = self.cut_value(mask);
            if v > best.1 {
                best = (mask, v);
            }
        }
        best
    }
}

/// Generate a random `degree`-regular graph on `n` vertices using the
/// configuration model with restarts (the paper's QAOA benchmark uses a
/// random 4-regular graph, §5.3).
///
/// `n * degree` must be even. Deterministic for a given seed.
pub fn random_regular_graph(n: usize, degree: usize, seed: u64) -> Graph {
    assert!(n > degree, "need n > degree");
    assert!((n * degree).is_multiple_of(2), "n * degree must be even");
    let mut rng = StdRng::seed_from_u64(seed);
    'retry: for _attempt in 0..10_000 {
        // Stubs: each vertex appears `degree` times.
        let mut stubs: Vec<usize> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v, degree))
            .collect();
        // Fisher-Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut edges = Vec::with_capacity(n * degree / 2);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if a == b || !seen.insert((a, b)) {
                continue 'retry; // self-loop or multi-edge: resample
            }
            edges.push((a, b));
        }
        return Graph { n, edges };
    }
    panic!("failed to build a simple {degree}-regular graph on {n} vertices");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graph_has_uniform_degree() {
        for (n, d, seed) in [(8, 4, 1), (10, 3, 2), (16, 4, 3)] {
            let g = random_regular_graph(n, d, seed);
            assert_eq!(g.edges.len(), n * d / 2);
            assert!(g.degrees().iter().all(|&deg| deg == d));
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = random_regular_graph(12, 4, 77);
        let b = random_regular_graph(12, 4, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = random_regular_graph(14, 4, 5);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &g.edges {
            assert!(a < b);
            assert!(seen.insert((a, b)));
        }
    }

    #[test]
    fn cut_value_counts_crossing_edges() {
        let g = Graph {
            n: 4,
            edges: vec![(0, 1), (1, 2), (2, 3), (0, 3)],
        };
        // Bipartition {0,2} vs {1,3} cuts all 4 edges of the 4-cycle.
        assert_eq!(g.cut_value(0b0101), 4);
        assert_eq!(g.cut_value(0b0000), 0);
        assert_eq!(g.max_cut_brute_force().1, 4);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_stub_count_rejected() {
        random_regular_graph(5, 3, 0);
    }
}
