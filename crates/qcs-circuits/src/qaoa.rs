//! QAOA MAXCUT benchmark (paper §5.3): the quantum approximate optimization
//! algorithm of Farhi, Goldstone & Gutmann on a random 4-regular graph.
//!
//! Each of the `p` rounds applies the cost unitary
//! `exp(-i gamma/2 * sum_{(u,v)} (1 - Z_u Z_v))` — realized per edge as
//! `CX(u,v); Rz(2 gamma, v); CX(u,v)` up to global phase — followed by the
//! mixer `Rx(2 beta)` on every qubit.

use crate::circuit::Circuit;
use crate::graph::Graph;

/// QAOA variational parameters for `p` rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaParams {
    /// Cost angles, one per round.
    pub gammas: Vec<f64>,
    /// Mixer angles, one per round.
    pub betas: Vec<f64>,
}

impl QaoaParams {
    /// Fixed, reasonable single-round parameters (near-optimal for MAXCUT on
    /// regular graphs at p=1).
    pub fn standard(p: usize) -> Self {
        // Linear ramp schedule, a common heuristic initialization.
        let gammas = (0..p).map(|i| 0.8 * (i as f64 + 1.0) / p as f64).collect();
        let betas = (0..p).map(|i| 0.7 * (1.0 - i as f64 / p as f64)).collect();
        Self { gammas, betas }
    }

    /// Number of rounds.
    pub fn rounds(&self) -> usize {
        debug_assert_eq!(self.gammas.len(), self.betas.len());
        self.gammas.len()
    }
}

/// Build the QAOA MAXCUT circuit for `graph` with `params`.
pub fn qaoa_circuit(graph: &Graph, params: &QaoaParams) -> Circuit {
    let mut c = Circuit::new(graph.n);
    for q in 0..graph.n {
        c.h(q);
    }
    for round in 0..params.rounds() {
        let gamma = params.gammas[round];
        let beta = params.betas[round];
        for &(u, v) in &graph.edges {
            c.cx(u, v);
            c.rz(2.0 * gamma, v);
            c.cx(u, v);
        }
        for q in 0..graph.n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

/// Grid-search the best p=1 angles on a dense simulation (classical outer
/// loop of the hybrid algorithm; practical for small `n` only).
pub fn grid_search_p1(graph: &Graph, resolution: usize) -> (QaoaParams, f64) {
    assert!(graph.n <= 20, "dense grid search limited to small graphs");
    let mut best = (QaoaParams::standard(1), f64::NEG_INFINITY);
    let mut rng = rand::rngs::mock::StepRng::new(0, 0);
    for gi in 1..resolution {
        for bi in 1..resolution {
            let gamma = std::f64::consts::PI * gi as f64 / resolution as f64;
            let beta = std::f64::consts::PI * bi as f64 / (2.0 * resolution as f64);
            let params = QaoaParams {
                gammas: vec![gamma],
                betas: vec![beta],
            };
            let s = qaoa_circuit(graph, &params).simulate_dense(&mut rng);
            let e = expected_cut(graph, &s.probabilities());
            if e > best.1 {
                best = (params, e);
            }
        }
    }
    best
}

/// Expected cut value of a probability distribution over assignments.
pub fn expected_cut(graph: &Graph, probabilities: &[f64]) -> f64 {
    probabilities
        .iter()
        .enumerate()
        .map(|(mask, &p)| p * graph.cut_value(mask as u64) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::random_regular_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circuit_shape() {
        let g = random_regular_graph(8, 4, 1);
        let params = QaoaParams::standard(2);
        let c = qaoa_circuit(&g, &params);
        // H wall + per round: 3 ops/edge + n mixers.
        let expected = 8 + 2 * (3 * g.edges.len() + 8);
        assert_eq!(c.gate_count(), expected);
    }

    #[test]
    fn qaoa_beats_random_guessing() {
        let g = random_regular_graph(10, 4, 3);
        let (params, expect) = grid_search_p1(&g, 8);
        assert_eq!(params.rounds(), 1);
        // Uniform random assignment cuts half the edges in expectation.
        let random_baseline = g.edges.len() as f64 / 2.0;
        assert!(
            expect > random_baseline + 0.5,
            "QAOA expectation {expect} not better than random {random_baseline}"
        );
        // And is bounded by the true optimum.
        let (_, opt) = g.max_cut_brute_force();
        assert!(expect <= opt as f64 + 1e-9);
    }

    #[test]
    fn p0_degenerates_to_uniform() {
        let g = random_regular_graph(6, 4, 9);
        let c = qaoa_circuit(&g, &QaoaParams::standard(0));
        let mut rng = StdRng::seed_from_u64(0);
        let s = c.simulate_dense(&mut rng);
        let expect = expected_cut(&g, &s.probabilities());
        assert!((expect - g.edges.len() as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn norm_preserved() {
        let g = random_regular_graph(8, 4, 4);
        let c = qaoa_circuit(&g, &QaoaParams::standard(3));
        let mut rng = StdRng::seed_from_u64(0);
        let s = c.simulate_dense(&mut rng);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
