//! Quantum Fourier transform benchmark (paper §5.3) — the deep-circuit
//! workload: `O(n^2)` controlled-phase gates.
//!
//! The paper applies random X gates to the initial state as the QFT input;
//! [`qft_benchmark_circuit`] reproduces that.

use crate::circuit::Circuit;
use qcs_statevec::qft_phase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The standard QFT circuit on `n` qubits: per qubit an H followed by the
/// cascade of controlled phases, then the bit-reversal swap network.
pub fn qft_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in (0..n).rev() {
        c.h(i);
        for j in (0..i).rev() {
            // Distance determines the angle pi / 2^(i-j).
            c.cphase(qft_phase((i - j + 1) as u32), j, i);
        }
    }
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

/// Inverse QFT.
pub fn iqft_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    for i in 0..n {
        for j in 0..i {
            c.cphase(-qft_phase((i - j + 1) as u32), j, i);
        }
        c.h(i);
    }
    c
}

/// The paper's QFT benchmark: random X gates prepare a random basis state,
/// then the QFT runs. Deterministic for a given seed.
pub fn qft_benchmark_circuit(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        if rng.gen::<bool>() {
            c.x(q);
        }
    }
    c.extend(&qft_circuit(n));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_statevec::{Complex64, StateVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qft_of_zero_is_uniform() {
        let n = 5;
        let c = qft_circuit(n);
        let mut rng = StdRng::seed_from_u64(0);
        let s = c.simulate_dense(&mut rng);
        let expect = 1.0 / ((1u64 << n) as f64).sqrt();
        for a in s.amplitudes() {
            assert!((a.re - expect).abs() < 1e-10 && a.im.abs() < 1e-10);
        }
    }

    #[test]
    fn qft_matches_dft_matrix_on_basis_states() {
        // QFT|k> has amplitudes omega^{jk} / sqrt(N).
        let n = 4;
        let size = 1usize << n;
        for k in [1u64, 5, 10, 15] {
            let mut s = StateVector::basis_state(n, k);
            let mut rng = StdRng::seed_from_u64(0);
            qft_circuit(n).run_dense(&mut s, &mut rng);
            for j in 0..size {
                let angle = 2.0 * std::f64::consts::PI * (j as f64) * (k as f64) / size as f64;
                let expect = Complex64::from_polar(1.0 / (size as f64).sqrt(), angle);
                assert!(
                    s.amplitudes()[j].approx_eq(expect, 1e-10),
                    "k={k} j={j}: {} vs {}",
                    s.amplitudes()[j],
                    expect
                );
            }
        }
    }

    #[test]
    fn iqft_inverts_qft() {
        let n = 5;
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = StateVector::basis_state(n, 19);
        qft_circuit(n).run_dense(&mut s, &mut rng);
        iqft_circuit(n).run_dense(&mut s, &mut rng);
        assert!(s.amplitudes()[19].abs() > 1.0 - 1e-10);
    }

    #[test]
    fn gate_count_is_quadratic() {
        let n = 10;
        let c = qft_circuit(n);
        // n H + n(n-1)/2 cphase + n/2 swaps.
        assert_eq!(c.gate_count(), n + n * (n - 1) / 2 + n / 2);
    }

    #[test]
    fn benchmark_circuit_is_seeded() {
        assert_eq!(qft_benchmark_circuit(8, 5), qft_benchmark_circuit(8, 5));
        assert_ne!(qft_benchmark_circuit(8, 5), qft_benchmark_circuit(8, 6));
    }
}
