//! Quantum phase estimation and Bernstein-Vazirani — two further QFT-family
//! workloads from the algorithm families the paper cites as QFT consumers
//! (Shor, phase estimation, hidden subgroup, §5.3).

use crate::circuit::Circuit;
use crate::qft::iqft_circuit;

/// Phase-estimation circuit for the unitary `U = Phase(2*pi*phase)` acting
/// on one target qubit prepared in its `|1>` eigenstate.
///
/// Layout: qubits `0..precision` hold the phase register (little-endian:
/// qubit `k` weights `2^k`), qubit `precision` is the eigenstate target.
/// Measuring the register yields `round(phase * 2^precision)` with high
/// probability.
pub fn phase_estimation_circuit(precision: usize, phase: f64) -> Circuit {
    assert!(precision >= 1);
    let n = precision + 1;
    let target = precision;
    let mut c = Circuit::new(n);
    // Eigenstate |1> of the phase gate.
    c.x(target);
    for q in 0..precision {
        c.h(q);
    }
    // Controlled-U^(2^k) from register qubit k.
    for k in 0..precision {
        let theta = 2.0 * std::f64::consts::PI * phase * 2f64.powi(k as i32);
        c.cphase(theta, k, target);
    }
    // Inverse QFT on the register (qubits 0..precision).
    let iq = iqft_circuit(precision);
    for op in iq.ops() {
        c.push(op.clone());
    }
    c
}

/// The most likely register readout for a phase-estimation run.
pub fn expected_readout(precision: usize, phase: f64) -> u64 {
    ((phase * 2f64.powi(precision as i32)).round() as u64) % (1u64 << precision)
}

/// Bernstein-Vazirani circuit: recovers the hidden string `secret` with a
/// single oracle query. Layout: `n` data qubits + 1 ancilla (qubit `n`).
pub fn bernstein_vazirani_circuit(n: usize, secret: u64) -> Circuit {
    assert!(n >= 1 && secret < (1u64 << n));
    let mut c = Circuit::new(n + 1);
    // Ancilla in |->.
    c.x(n);
    c.h(n);
    for q in 0..n {
        c.h(q);
    }
    // Oracle: f(x) = secret . x, implemented as CX from each secret bit.
    for q in 0..n {
        if secret >> q & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_phase_is_read_out_deterministically() {
        // phase = 5/16 is exactly representable in 4 bits.
        let precision = 4;
        let phase = 5.0 / 16.0;
        let c = phase_estimation_circuit(precision, phase);
        let mut rng = StdRng::seed_from_u64(0);
        let s = c.simulate_dense(&mut rng);
        let probs = s.probabilities();
        // The register (low 4 bits) must read 5; the target stays |1>.
        let expect = 5usize | (1 << precision);
        assert!(
            probs[expect] > 1.0 - 1e-9,
            "P[{expect:b}] = {}",
            probs[expect]
        );
        assert_eq!(expected_readout(precision, phase), 5);
    }

    #[test]
    fn inexact_phase_concentrates_near_truth() {
        let precision = 5;
        let phase = 0.3; // not a multiple of 1/32
        let c = phase_estimation_circuit(precision, phase);
        let mut rng = StdRng::seed_from_u64(0);
        let s = c.simulate_dense(&mut rng);
        let probs = s.probabilities();
        let best = expected_readout(precision, phase) as usize;
        // Sum probability over the register value regardless of target bit.
        let reg_prob = |r: usize| probs[r] + probs[r | (1 << precision)];
        // The nearest grid point gets the plurality (> 0.4 analytically).
        assert!(reg_prob(best) > 0.4, "P[{best}] = {}", reg_prob(best));
        let total: f64 = (0..(1 << precision)).map(reg_prob).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bernstein_vazirani_recovers_secret_in_one_query() {
        for secret in [0u64, 1, 0b1011, 0b11111, 0b10101] {
            let n = 5;
            let c = bernstein_vazirani_circuit(n, secret);
            let mut rng = StdRng::seed_from_u64(0);
            let s = c.simulate_dense(&mut rng);
            let probs = s.probabilities();
            // Data register reads the secret; ancilla is |-> (either bit).
            let p = probs[secret as usize] + probs[secret as usize | 1 << n];
            assert!(p > 1.0 - 1e-9, "secret {secret:b}: P = {p}");
        }
    }

    #[test]
    fn oracle_query_count_is_linear_in_secret_weight() {
        let c = bernstein_vazirani_circuit(6, 0b101101);
        let cx = c.entangling_count();
        assert_eq!(cx, 4); // popcount of the secret
    }
}
