//! Property suite for the batch scheduler: fused/batched schedules must be
//! observationally identical to the source circuit, must never reorder
//! gates across two-qubit/controlled operations, and must only ever emit
//! unitary fused matrices.

use proptest::prelude::*;
use qcs_circuits::schedule::{schedule_circuit, FusionPolicy, ScheduledOp};
use qcs_circuits::{Circuit, Op};
use qcs_statevec::GateKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 6;

fn gate_kind() -> impl Strategy<Value = GateKind> {
    prop_oneof![
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::Y),
        Just(GateKind::T),
        Just(GateKind::S),
        Just(GateKind::SqrtX),
        Just(GateKind::SqrtY),
        (-3.0f64..3.0).prop_map(GateKind::Rx),
        (-3.0f64..3.0).prop_map(GateKind::Ry),
        (-3.0f64..3.0).prop_map(GateKind::Rz),
        (-3.0f64..3.0).prop_map(GateKind::Phase),
    ]
}

/// A random circuit biased toward fusable runs (consecutive singles on the
/// same qubit) interleaved with controlled gates, swaps and measurements.
fn random_circuit() -> impl Strategy<Value = Circuit> {
    prop::collection::vec((gate_kind(), 0..N, 0..N, 0..N, 0u8..8), 1..40).prop_map(|specs| {
        let mut c = Circuit::new(N);
        for (g, a, b, t, kind) in specs {
            match kind {
                // Weight single-qubit gates heavily so fusion runs form.
                0..=3 => {
                    c.push(Op::Single { gate: g, target: t });
                }
                4 if a != t => {
                    c.push(Op::Controlled {
                        gate: g,
                        control: a,
                        target: t,
                    });
                }
                5 if a != b && a != t && b != t => {
                    c.push(Op::MultiControlled {
                        gate: g,
                        controls: vec![a, b],
                        target: t,
                    });
                }
                6 if a != b => {
                    c.push(Op::Swap { a, b });
                }
                7 => {
                    c.push(Op::Measure { target: t });
                }
                _ => {
                    c.push(Op::Single { gate: g, target: t });
                }
            }
        }
        c
    })
}

fn policy(block_log2: u32, max_batch: usize) -> FusionPolicy {
    FusionPolicy {
        max_batch_gates: max_batch,
        ..FusionPolicy::for_block(block_log2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Fused + batched replay is amplitude-equivalent to direct execution
    // on a dense state vector, for every block geometry.
    #[test]
    fn scheduled_execution_matches_direct(
        c in random_circuit(),
        block_log2 in 0u32..7,
        max_batch in 1usize..9,
        seed in any::<u64>(),
    ) {
        let s = schedule_circuit(&c, &policy(block_log2, max_batch));
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let direct = c.simulate_dense(&mut rng_a);
        let scheduled = s.simulate_dense(&mut rng_b);
        let max_err = direct
            .amplitudes()
            .iter()
            .zip(scheduled.amplitudes())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(max_err <= 1e-10, "max amplitude error {max_err:e}");
    }

    // The scheduler never reorders: every scheduled item covers a
    // contiguous source range and the ranges tile the circuit in order.
    // In particular no gate ever crosses a two-qubit, controlled, swap,
    // or measure op.
    #[test]
    fn schedule_is_order_preserving(
        c in random_circuit(),
        block_log2 in 0u32..7,
        max_batch in 1usize..9,
    ) {
        let s = schedule_circuit(&c, &policy(block_log2, max_batch));
        let mut next = 0usize;
        for item in s.items() {
            let (start, len) = item.src_range();
            prop_assert_eq!(start, next);
            prop_assert!(len >= 1);
            next = start + len;
        }
        prop_assert_eq!(next, c.gate_count());
    }

    // Fused runs only ever swallow single-qubit gates on one qubit, and
    // two-qubit/controlled/swap/measure ops survive as their own items.
    #[test]
    fn fusion_only_merges_single_qubit_runs(
        c in random_circuit(),
        block_log2 in 0u32..7,
    ) {
        let s = schedule_circuit(&c, &policy(block_log2, 8));
        let check_gate = |g: &qcs_circuits::FusedGate| {
            if g.src_len > 1 {
                for op in &c.ops()[g.src_start..g.src_start + g.src_len] {
                    match op {
                        Op::Single { target, .. } => {
                            assert_eq!(*target, g.op.target, "fused run changed target");
                        }
                        other => panic!("fused run swallowed {other:?}"),
                    }
                }
            }
        };
        for item in s.items() {
            match item {
                ScheduledOp::Batch(b) => b.gates().iter().for_each(check_gate),
                ScheduledOp::Gate(g) => check_gate(g),
                ScheduledOp::Bare { op, src } => {
                    prop_assert!(
                        matches!(op, Op::Swap { .. } | Op::Measure { .. }),
                        "unitary left bare"
                    );
                    prop_assert_eq!(op, &c.ops()[*src]);
                }
            }
        }
    }

    // Every fused matrix the scheduler emits is unitary: products of
    // unitaries stay unitary, and the scheduler must not degrade that
    // numerically beyond tolerance.
    #[test]
    fn fused_gates_stay_unitary(
        kinds in prop::collection::vec(gate_kind(), 1..24),
    ) {
        let mut c = Circuit::new(1);
        for g in kinds {
            c.push(Op::Single { gate: g, target: 0 });
        }
        let s = schedule_circuit(&c, &policy(1, 8));
        let mut fused_seen = 0usize;
        for item in s.items() {
            let gates: Vec<_> = match item {
                ScheduledOp::Batch(b) => b.gates().iter().collect(),
                ScheduledOp::Gate(g) => vec![g],
                ScheduledOp::Bare { .. } => vec![],
            };
            for g in gates {
                fused_seen += g.src_len;
                prop_assert!(
                    g.op.gate.is_unitary(1e-9),
                    "fused matrix of {} gates lost unitarity",
                    g.src_len
                );
            }
        }
        prop_assert_eq!(fused_seen, c.gate_count());
    }

    // Batches only contain intra-block targets, and batch length respects
    // the configured cap.
    #[test]
    fn batches_respect_block_routing_and_cap(
        c in random_circuit(),
        block_log2 in 0u32..7,
        max_batch in 1usize..9,
    ) {
        let s = schedule_circuit(&c, &policy(block_log2, max_batch));
        for item in s.items() {
            if let ScheduledOp::Batch(b) = item {
                prop_assert!(b.len() >= 2, "degenerate batch");
                prop_assert!(b.len() <= max_batch.max(1));
                for g in b.gates() {
                    prop_assert!(
                        (g.op.target as u32) < block_log2,
                        "batched target {} not intra-block",
                        g.op.target
                    );
                }
            }
        }
    }
}
