//! Offline stand-in for the `proptest` crate (the subset this workspace's
//! property tests use).
//!
//! The build environment has no registry access, so the needed surface is
//! reimplemented: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`Just`], [`any`], `prop::collection::vec`, the weighted
//! [`prop_oneof!`] union, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberate for size: cases are drawn
//! from a deterministic per-test RNG (seeded from the test name), failing
//! cases are reported but **not shrunk**, and `prop_assume!` skips the case
//! instead of re-drawing. That keeps the test *semantics* — N generated
//! cases, assertion failure means test failure — identical.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```

#![warn(missing_docs)]
// The crate-level doctest demonstrates the `proptest!` macro, whose syntax
// requires `#[test]` items inside the macro invocation.
#![allow(clippy::test_attr_in_doctest)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// RNG driving test-case generation.
pub type TestRng = rand::rngs::StdRng;

/// Deterministic per-test RNG, seeded from the test's name.
///
/// Uses an inline FNV-1a hash rather than `std`'s `DefaultHasher` so the
/// case sequence is stable across Rust toolchain upgrades.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ 0x9E37_79B9_7F4A_7C15)
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; not a failure.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (assumption not met).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values for property tests.
///
/// Object-safe so strategies of mixed concrete types can be unified in
/// [`prop_oneof!`]; combinators live on [`StrategyExt`].
pub trait Strategy {
    /// Type of the generated values.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Combinators for [`Strategy`] (blanket-implemented).
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { s: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// Strategy produced by [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.s.generate(rng))
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Full-range "any value" strategy, mirroring `proptest::arbitrary::any`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Types [`any`] can generate.
pub trait ArbitraryValue {
    /// Draw a full-range value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Union of boxed strategies drawn with relative weights (the engine
/// behind [`prop_oneof!`]).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

#[doc(hidden)]
pub fn __box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec()`](fn@vec).
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! Namespace mirror so `prop::collection::vec` resolves after a
    //! prelude glob import.
    pub use crate::collection;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::{any, prop, Just, ProptestConfig, Strategy, StrategyExt, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Pick among strategies, optionally weighted (`w => strategy`), mirroring
/// `proptest::prop_oneof!`. All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight as u32, $crate::__box_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $((1u32, $crate::__box_strategy($strat))),+
        ])
    };
}

/// Define property tests over generated inputs, mirroring `proptest!`.
///
/// Supports the `#![proptest_config(..)]` header and one or more
/// `#[test] fn name(arg in strategy, ...) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                __l,
                __r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Skip the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0u8..10, 2..5),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn oneof_draws_every_weighted_arm(
            picks in prop::collection::vec(
                prop_oneof![
                    3 => Just(0u8),
                    1 => Just(1u8),
                ],
                200..201,
            ),
        ) {
            for p in &picks {
                prop_assert!(*p <= 1);
            }
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn tuples_and_prop_map_compose(
            pair in (0u32..5, 10u32..15).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((10..20).contains(&pair));
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use crate::Strategy;
        let s = 0u64..u64::MAX;
        let a: Vec<u64> = {
            let mut r = crate::test_rng("x");
            (0..4).map(|_| s.generate(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::test_rng("x");
            (0..4).map(|_| s.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
