//! Offline stand-in for the `criterion` crate (the subset this workspace's
//! benches use): [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no registry access, so this shim keeps the
//! bench sources compiling and runnable: each benchmark runs a short
//! warmup, then a fixed number of timed passes, and prints median time per
//! iteration (plus derived throughput when declared). No statistics engine,
//! no HTML reports — swap the real criterion back in when a registry is
//! available; no bench source changes will be needed.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub use std::hint::black_box;

/// Measurement configuration and sink for a bench target binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(name.to_string(), f);
        g.finish();
        self
    }
}

/// Declared work-per-iteration, used to derive throughput from time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// A named group of benchmarks sharing throughput/sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.full_name(), &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id.full_name(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (prints nothing extra in this shim).
    pub fn finish(self) {}

    fn run_one(&self, bench_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let label = if self.name.is_empty() {
            bench_name.to_string()
        } else {
            format!("{}/{}", self.name, bench_name)
        };
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warmup pass, then timed samples.
        for i in 0..=self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if i > 0 && b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let thr = match self.throughput {
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / median / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / median / 1e6)
            }
            _ => String::new(),
        };
        println!("bench {label:<48} {:>12.3} us/iter{thr}", median * 1e6);
    }
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier distinguished by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => format!("{}/{}", self.function, p),
            Some(p) => p.clone(),
            None => self.function.clone(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: None,
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self::from(function.to_string())
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`; the harness aggregates per-call
    /// cost across samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // A small fixed batch keeps full `cargo bench` runs fast while
        // still amortizing timer overhead.
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Define a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes harness flags like `--bench`; nothing to parse
            // in this shim.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| ());
            calls += 1;
        });
        // 1 warmup + sample_size timed passes.
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 4), &vec![1u64; 4], |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).full_name(), "f/3");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
    }
}
