//! Offline stand-in for the `rayon` crate (the API subset this workspace
//! uses), built on `std::thread::scope` instead of a work-stealing pool.
//!
//! The build environment has no registry access, so the parallel-iterator
//! surface the simulator needs is reimplemented here: `par_iter`,
//! `into_par_iter`, `par_chunks_mut`, the `map` / `map_init` / `enumerate` /
//! `for_each` / `collect` adapters, [`current_num_threads`], and
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`].
//!
//! Execution model: the driving adapter first materializes the items, then
//! splits them into contiguous stripes, one scoped thread per stripe (so
//! `collect` preserves order). `install` sets a thread-local width that
//! [`current_num_threads`] and the striping honor — enough to reproduce the
//! paper's ranks-times-threads scaling tables without a real pool.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = (0..64u64).collect::<Vec<_>>()
//!     .into_par_iter()
//!     .map(|x| x * x)
//!     .collect();
//! assert_eq!(squares[9], 81);
//! ```

#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will stripe across:
/// the width of the innermost [`ThreadPool::install`] on this thread, or
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|t| match t.get() {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (machine-wide) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool": in this shim, just a parallelism width that `install` applies
/// to the calling thread for the duration of the closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's width as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Run `f` over `items` on `threads` scoped workers, stripe per worker,
/// returning results in input order.
fn striped_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(len);
    let stripe = len.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    // Hand each worker an owned stripe of consecutive items.
    let mut stripes: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    for _ in 0..workers {
        stripes.push(items.by_ref().take(stripe).collect());
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Like [`striped_map`] but with a per-worker scratch state built by `init`
/// (the `map_init` contract).
fn striped_map_init<T, S, R, FI, F>(items: Vec<T>, threads: usize, init: FI, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let len = items.len();
    if threads <= 1 || len <= 1 {
        let mut state = init();
        return items.into_iter().map(|t| f(&mut state, t)).collect();
    }
    let workers = threads.min(len);
    let stripe = len.div_ceil(workers);
    let mut stripes: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    for _ in 0..workers {
        stripes.push(items.by_ref().take(stripe).collect());
    }
    let (init, f) = (&init, &f);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    let mut state = init();
                    chunk
                        .into_iter()
                        .map(|t| f(&mut state, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A (pseudo-)parallel iterator over the items of `I`.
///
/// Driving adapters (`for_each`, `collect`) materialize the underlying
/// iterator and stripe it across scoped threads.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Pair each item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    /// Transform items with `f`.
    pub fn map<R, F: Fn(I::Item) -> R + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            inner: self.inner,
            f,
        }
    }

    /// Transform items with `f`, threading a per-worker state built by
    /// `init` (scratch buffers, etc.).
    pub fn map_init<S, R, FI, F>(self, init: FI, f: F) -> ParMapInit<I, FI, F>
    where
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, I::Item) -> R + Sync,
    {
        ParMapInit {
            inner: self.inner,
            init,
            f,
        }
    }

    /// Consume items with `f` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let items: Vec<I::Item> = self.inner.collect();
        striped_map(items, current_num_threads(), f);
    }

    /// Collect items in order (sequential; pair with `map` for parallelism).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }
}

/// `map` stage of a [`ParIter`].
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParMap<I, F>
where
    I: Iterator,
    I::Item: Send,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    /// Evaluate the map in parallel and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items: Vec<I::Item> = self.inner.collect();
        striped_map(items, current_num_threads(), self.f)
            .into_iter()
            .collect()
    }

    /// Evaluate the map in parallel, discarding results.
    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        let items: Vec<I::Item> = self.inner.collect();
        let f = &self.f;
        striped_map(items, current_num_threads(), |t| g(f(t)));
    }
}

/// `map_init` stage of a [`ParIter`].
pub struct ParMapInit<I, FI, F> {
    inner: I,
    init: FI,
    f: F,
}

impl<I, S, R, FI, F> ParMapInit<I, FI, F>
where
    I: Iterator,
    I::Item: Send,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, I::Item) -> R + Sync,
{
    /// Evaluate the map in parallel (one state per worker) and collect in
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items: Vec<I::Item> = self.inner.collect();
        striped_map_init(items, current_num_threads(), self.init, self.f)
            .into_iter()
            .collect()
    }
}

/// Conversion into a [`ParIter`] by value (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<Idx> IntoParallelIterator for std::ops::Range<Idx>
where
    std::ops::Range<Idx>: Iterator<Item = Idx>,
{
    type Item = Idx;
    type Iter = std::ops::Range<Idx>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

/// `par_iter` over shared slices (mirrors rayon's `ParallelSlice`).
pub trait ParallelSlice<T> {
    /// Parallel iterator over `&T` items.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter { inner: self.iter() }
    }
}

/// `par_chunks_mut` over mutable slices (mirrors rayon's
/// `ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over non-overlapping mutable chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter {
            inner: self.chunks_mut(chunk_size),
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_collect_into_result_short_circuits() {
        let v: Vec<usize> = (0..100).collect();
        let out: Result<Vec<usize>, String> = v
            .into_par_iter()
            .map(|x| {
                if x == 63 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(out.unwrap_err(), "boom");
    }

    #[test]
    fn chunks_mut_for_each_touches_everything() {
        let mut v = vec![1u64; 4096];
        v.par_chunks_mut(128).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn enumerate_for_each_sees_correct_indices() {
        let mut v = vec![0usize; 999];
        v.par_chunks_mut(100).enumerate().for_each(|(k, c)| {
            for x in c.iter_mut() {
                *x = k;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[250], 2);
        assert_eq!(v[998], 9);
    }

    #[test]
    fn map_init_builds_worker_state() {
        let v: Vec<usize> = (0..256).collect();
        let out: Vec<usize> = v
            .into_par_iter()
            .map_init(
                || Vec::<usize>::with_capacity(8),
                |buf, x| {
                    buf.push(x);
                    x + buf.len()
                },
            )
            .collect();
        assert_eq!(out.len(), 256);
    }

    #[test]
    fn install_sets_ambient_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 7);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn par_iter_enumerate_map_collect() {
        let v = [10u64, 20, 30];
        let out: Vec<u64> = v
            .par_iter()
            .enumerate()
            .map(|(i, x)| *x + i as u64)
            .collect();
        assert_eq!(out, vec![10, 21, 32]);
    }
}
