//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this workspace has no registry access, so the
//! handful of `rand` 0.8 APIs the simulator uses are reimplemented here from
//! scratch: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`),
//! [`SeedableRng`] (`from_seed`, `seed_from_u64`), a deterministic
//! [`rngs::StdRng`] built on xoshiro256++, and [`rngs::mock::StepRng`].
//!
//! Stream values differ from the real `rand::rngs::StdRng` (which is
//! ChaCha12-based); everything in this workspace only relies on seeded
//! determinism, not on a specific stream.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!(rng.gen_range(10..20u32) >= 10);
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniform raw bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker distribution for `Rng::gen`: the "natural" uniform distribution of
/// a type (unit interval for floats, full range for integers).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draw one value using `rng` as the source of randomness.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Uniform `v` in `[0, n)` without modulo bias (rejection sampling).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

/// Types that can be drawn uniformly from a range (the `rand` 0.8
/// `SampleUniform` role, reduced to what this workspace needs).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform value in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range: empty range"
                );
                // Width in u64 space; an all-range inclusive span of a 64-bit
                // type would overflow, which no caller here needs.
                let span = (high as i128 - low as i128) as u128 + if inclusive { 1 } else { 0 };
                debug_assert!(span <= u64::MAX as u128, "range too wide");
                let off = uniform_u64_below(rng, span as u64);
                ((low as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "gen_range: empty float range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (low as f64 + (high as f64 - low as f64) * unit) as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing random value API, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, U>(&mut self, range: U) -> T
    where
        T: SampleUniform,
        U: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded to a full seed via SplitMix64 — the
    /// same expansion rule the real `rand` 0.8 uses.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator: xoshiro256++
    /// (Blackman & Vigna 2019). Not cryptographic; statistically strong and
    /// fast, which is all the simulator needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[8 * i..8 * i + 8].try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    pub mod mock {
        //! Mock generators for deterministic tests.

        use super::super::RngCore;

        /// Generator returning an arithmetic sequence: `v, v+s, v+2s, ...`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Start at `initial`, advancing by `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen::<f64>()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen::<f64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn step_rng_sequences() {
        let mut r = StepRng::new(10, 3);
        assert_eq!(r.next_u64(), 10);
        assert_eq!(r.next_u64(), 13);
        assert_eq!(r.next_u64(), 16);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
