//! Offline stand-in for the `parking_lot` crate (the subset this workspace
//! uses), wrapping `std::sync` primitives.
//!
//! The build environment has no registry access. The semantic difference
//! from `std` that callers here rely on is the API shape: `lock()` returns
//! the guard directly (no poisoning `Result`). Poisoning is mapped to
//! "ignore and take the lock", matching `parking_lot`'s behavior of not
//! poisoning at all.
//!
//! ```
//! use parking_lot::Mutex;
//!
//! let m = Mutex::new(41);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 42);
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Acquire the lock without contention checks if free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_gives_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(5);
        *m.get_mut() = 6;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
